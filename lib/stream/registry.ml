(** The multi-view server: N registered views maintained off one shared
    update stream, with per-view supervision.

    The registry owns the authoritative base database — the durable
    truth that checkpoints snapshot — and a list of registered views,
    each built by a *factory* from a database. Keeping the factory
    around is what makes both crash recovery and fault recovery
    uniform: any view can be rebuilt from the base state at any time,
    so a view whose engine misbehaves is never fatal — it is degraded,
    retried, and rebuilt, while every other view keeps serving.

    Supervision model:

    - A view whose [apply_batch] raises is marked {e degraded}. Its
      updates stop flowing (the base database still absorbs them), and
      recovery is scheduled with exponential backoff plus seeded
      jitter.
    - Recovery rebuilds the view from the live base database — the
      same operation as crash recovery, because the base state already
      contains everything the view missed while degraded.
    - If the rebuild itself fails, the updates of the failed batch are
      suspected of being {e poison}. The registry retries the rebuild
      excluding each single suspect in turn (then all of them); the
      smallest exclusion that works is {e dead-lettered}: recorded
      per-view, optionally appended to a dead-letter WAL, and filtered
      out of every future rebuild of that view.
    - A view that keeps failing past the threshold is {e quarantined}:
      no more automatic retries, but {!heal} can still force one.
    - {!self_check} compares each healthy view's fingerprint against a
      fresh rebuild and reinstalls the rebuild on divergence — silent
      state corruption heals itself at the next check.

    [apply_batch] routes each healthy view the sub-batch on its
    relations and fans the independent views across an
    {!Ivm_par.Domain_pool}: views share nothing, so view-level
    parallelism is plain task parallelism over disjoint state.
    Exceptions are caught {e inside} each task (the pool re-raises
    otherwise) and turned into supervision state after the barrier, on
    the scheduler's domain. *)

module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module M = Ivm_engine.Maintainable

type health = Healthy | Degraded | Quarantined

let health_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

type entry = {
  build : Db.t -> M.t;
  mutable view : M.t;
  mutable health : health;
  mutable failures : int; (* consecutive failures since the last clean apply *)
  mutable retry_at : float; (* wall clock of the next automatic recovery *)
  mutable suspects : int Update.t list; (* the batch in flight when it failed *)
  mutable dead : (string * Tuple.t) list; (* dead-lettered (relation, tuple) *)
  mutable last_error : string option;
}

type t = {
  db : Db.t;
  pool : Ivm_par.Domain_pool.t option;
  metrics : Metrics.t option;
  mutable entries : (string * entry) list; (* registration order, reversed *)
  (* supervision knobs *)
  backoff_base : float;
  max_failures : int;
  rng : Random.State.t;
  dead_wal : Wal.Z.t option;
  (* Epoch-consistency seam for network readers: every mutating entry
     point (apply_batch, heal, self_check, register) holds the
     exclusive side; [read] exposes the shared side. The read accessors
     below do NOT lock — a concurrent reader wraps them in [read]. *)
  lock : Rwlock.t;
  (* Bumped under the exclusive lock by every mutating entry point, so
     a reader holding the shared lock sees a stamp that exactly
     identifies the state — the invalidation key for snapshot caches. *)
  mutable generation : int;
}

let create ?pool ?metrics ?(backoff_base = 0.01) ?(max_failures = 5) ?(seed = 0) ?dead_wal db =
  {
    db;
    pool;
    metrics;
    entries = [];
    backoff_base;
    max_failures;
    rng = Random.State.make [| 0x51e9; seed |];
    dead_wal;
    lock = Rwlock.create ();
    generation = 0;
  }

let db t = t.db
let read t f = Rwlock.read t.lock f
let generation t = t.generation
let now () = Unix.gettimeofday ()

(* A placeholder installed when even the initial build fails: consumes
   nothing, serves empty state, until recovery rebuilds the real view. *)
let stub name =
  {
    M.name;
    relations = [];
    apply_batch = (fun _ -> ());
    output_count = (fun () -> 0);
    fingerprint = (fun () -> 0);
    enumerate = (fun () -> []);
  }

let metrics_view t name = Option.map (fun m -> Metrics.view m name) t.metrics

let count_failure t name =
  Option.iter (fun v -> v.Metrics.failures <- v.Metrics.failures + 1) (metrics_view t name)

(* The base database minus a view's dead-lettered tuples: what its
   factory rebuilds from. With no dead letters this is the live
   database itself — the common case costs nothing. *)
let filtered_db t (dead : (string * Tuple.t) list) =
  if dead = [] then t.db
  else begin
    let db' = Db.copy t.db in
    List.iter
      (fun (rel, tuple) -> if Db.mem db' rel then Rel.set_entry (Db.find db' rel) tuple 0)
      dead;
    db'
  end

let backoff t failures =
  let doubling = 2. ** float_of_int (max 0 (failures - 1)) in
  t.backoff_base *. doubling *. (1. +. Random.State.float t.rng 0.5)

(* Record one more failure for [e]: schedule the next retry, or
   quarantine past the threshold. *)
let note_failure t name e detail =
  e.failures <- e.failures + 1;
  e.last_error <- Some detail;
  count_failure t name;
  if e.failures >= t.max_failures then e.health <- Quarantined
  else begin
    e.health <- Degraded;
    e.retry_at <- now () +. backoff t e.failures
  end

let dead_letter t name e (updates : int Update.t list) =
  List.iter
    (fun (u : int Update.t) ->
      e.dead <- (u.Update.rel, u.Update.tuple) :: e.dead;
      Option.iter (fun w -> ignore (Wal.Z.append w u)) t.dead_wal)
    updates;
  Option.iter (fun w -> ignore (Wal.Z.sync w)) t.dead_wal;
  Option.iter
    (fun v -> v.Metrics.dead_letters <- v.Metrics.dead_letters + List.length updates)
    (metrics_view t name)

let install t name e view =
  e.view <- view;
  e.health <- Healthy;
  e.suspects <- [];
  Option.iter (fun v -> v.Metrics.rebuilds <- v.Metrics.rebuilds + 1) (metrics_view t name)

let try_build e db = match e.build db with v -> Some v | exception _ -> None

(* Distinct (relation, tuple) suspects from the failed batch, oldest
   first, excluding anything already dead-lettered. *)
let distinct_suspects e =
  let seen = Hashtbl.create 8 in
  List.iter (fun (rel, tu) -> Hashtbl.replace seen (rel, Tuple.to_string tu) ()) e.dead;
  List.filter
    (fun (u : int Update.t) ->
      let key = (u.Update.rel, Tuple.to_string u.Update.tuple) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev e.suspects)

let as_dead (us : int Update.t list) = List.map (fun (u : int Update.t) -> (u.Update.rel, u.Update.tuple)) us

(* One recovery attempt: rebuild from the (dead-filtered) base state;
   on failure, isolate poison by retrying with each single suspect
   excluded, then with all of them. The smallest exclusion that works
   is dead-lettered. On total failure, back off again. *)
let attempt_recovery t name e =
  match try_build e (filtered_db t e.dead) with
  | Some v -> install t name e v
  | None -> begin
      let suspects = distinct_suspects e in
      let single =
        List.find_map
          (fun (u : int Update.t) ->
            match try_build e (filtered_db t (as_dead [ u ] @ e.dead)) with
            | Some v -> Some (v, [ u ])
            | None -> None)
          suspects
      in
      let outcome =
        match single with
        | Some _ -> single
        | None when suspects <> [] -> (
            match try_build e (filtered_db t (as_dead suspects @ e.dead)) with
            | Some v -> Some (v, suspects)
            | None -> None)
        | None -> None
      in
      match outcome with
      | Some (v, poison) ->
          dead_letter t name e poison;
          install t name e v
      | None -> note_failure t name e "rebuild failed"
    end

(* Retry every degraded view whose backoff has elapsed. Quarantined
   views are skipped — only {!heal} touches those. *)
let maybe_recover t =
  let clock = now () in
  List.iter
    (fun (name, e) ->
      if e.health = Degraded && clock >= e.retry_at then attempt_recovery t name e)
    t.entries

let register t ~name build =
  if List.mem_assoc name t.entries then
    invalid_arg ("Registry.register: duplicate view " ^ name);
  Rwlock.write t.lock (fun () ->
      t.generation <- t.generation + 1;
      let e =
        {
          build;
          view = stub name;
          health = Healthy;
          failures = 0;
          retry_at = 0.;
          suspects = [];
          dead = [];
          last_error = None;
        }
      in
      (match try_build e t.db with
      | Some v -> e.view <- v
      | None -> note_failure t name e "initial build failed");
      t.entries <- (name, e) :: t.entries)

(* Declare a new empty base relation under the exclusive lock — the
   seam the SQL front end's CREATE TABLE goes through: the registry owns
   the authoritative base database, so table DDL must take the same lock
   (and bump the same generation stamp) as every other mutation. *)
let declare_table t name schema =
  Rwlock.write t.lock (fun () ->
      if Db.mem t.db name then
        Error (Printf.sprintf "relation %s already exists" name)
      else begin
        t.generation <- t.generation + 1;
        ignore (Db.declare t.db name schema);
        Ok ()
      end)

let views t = List.rev_map (fun (name, e) -> (name, e.view)) t.entries
let view_count t = List.length t.entries

let find t name =
  match List.assoc_opt name t.entries with
  | Some e -> e.view
  | None -> invalid_arg ("Registry.find: no view " ^ name)

let counts t = List.map (fun (name, m) -> (name, m.M.output_count ())) (views t)
let fingerprints t = List.map (fun (name, m) -> (name, m.M.fingerprint ())) (views t)

let health t name =
  match List.assoc_opt name t.entries with
  | Some e -> e.health
  | None -> invalid_arg ("Registry.health: no view " ^ name)

let statuses t = List.rev_map (fun (name, e) -> (name, e.health)) t.entries

let last_error t name =
  match List.assoc_opt name t.entries with
  | Some e -> e.last_error
  | None -> None

let dead_letters t = List.rev_map (fun (name, e) -> (name, List.rev e.dead)) t.entries

(* Route the epoch's per-relation front: per view, the concatenation of
   the relation groups it consumes. Group-level routing (the scheduler
   already holds the front grouped) replaces the old per-update filter
   of the whole flat batch for every view; a single-group front for a
   single-relation view is shared physically. Within one epoch the ring
   payloads make updates commute, so regrouping by relation is sound. *)
let sub_front (m : M.t) (front : (string * int Update.t list) list) =
  match m.M.relations with
  | [] -> []
  | rels -> (
      match List.filter (fun (rel, _) -> List.mem rel rels) front with
      | [] -> []
      | [ (_, ups) ] -> ups
      | groups -> List.concat_map snd groups)

let apply_front_locked t (front : (string * int Update.t list) list) =
  let batch = match front with [ (_, ups) ] -> ups | _ -> List.concat_map snd front in
      t.generation <- t.generation + 1;
      maybe_recover t;
      let entries = List.rev t.entries in
      (* Per-task elapsed times and caught exceptions land in
         preallocated slots; entry state and the metrics tables are only
         touched after the barrier, on this domain. *)
      let n_entries = List.length entries in
      let timings = Array.make n_entries 0. in
      let errors : string option array = Array.make n_entries None in
      let sized =
        List.mapi
          (fun i (name, e) ->
            let sub = if e.health = Healthy then sub_front e.view front else [] in
            (* Dead-lettered tuples stay quarantined out of the view —
               also on WAL replay after a restore. *)
            let sub =
              if e.dead = [] then sub
              else
                List.filter
                  (fun (u : int Update.t) ->
                    not
                      (List.exists
                         (fun (rel, tu) -> rel = u.Update.rel && Tuple.equal tu u.Update.tuple)
                         e.dead))
                  sub
            in
            (i, name, e, sub, List.length sub))
          entries
      in
      let tasks =
        (fun () -> Db.apply_batch t.db batch)
        :: List.filter_map
             (fun (i, _, e, sub, n) ->
               if n = 0 then None
               else
                 Some
                   (fun () ->
                     let t0 = now () in
                     match e.view.M.apply_batch sub with
                     | () -> timings.(i) <- now () -. t0
                     | exception exn -> errors.(i) <- Some (Printexc.to_string exn)))
             sized
      in
      (match t.pool with
      | Some pool -> Ivm_par.Domain_pool.run pool tasks
      | None -> List.iter (fun task -> task ()) tasks);
      List.iter
        (fun (i, name, e, sub, n) ->
          match errors.(i) with
          | Some detail ->
              (* The view's in-memory state is now suspect; recovery
                 will rebuild it from the base database, which did
                 absorb this batch. *)
              e.suspects <- List.rev_append sub e.suspects;
              note_failure t name e detail
          | None ->
              if n > 0 then begin
                e.failures <- 0;
                Option.iter
                  (fun v ->
                    v.Metrics.updates <- v.Metrics.updates + n;
                    v.Metrics.batches <- v.Metrics.batches + 1;
                    Metrics.Hist.add v.Metrics.apply timings.(i))
                  (metrics_view t name)
              end
              else if e.health <> Healthy then begin
                let missed = List.length (sub_front e.view front) in
                let missed = if missed = 0 then List.length batch else missed in
                Option.iter
                  (fun v -> v.Metrics.skipped <- v.Metrics.skipped + missed)
                  (metrics_view t name)
              end)
        sized

let apply_front t (front : (string * int Update.t list) list) =
  match List.filter (fun (_, ups) -> ups <> []) front with
  | [] -> ()
  | front -> Rwlock.write t.lock (fun () -> apply_front_locked t front)

(* Flat-batch entry point (recovery replay, tests): group per relation,
   preserving order within each, then route the front. *)
let apply_batch t (batch : int Update.t list) =
  match batch with
  | [] -> ()
  | batch ->
      let rels = ref [] in
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (u : int Update.t) ->
          match Hashtbl.find_opt tbl u.Update.rel with
          | Some l -> l := u :: !l
          | None ->
              Hashtbl.add tbl u.Update.rel (ref [ u ]);
              rels := u.Update.rel :: !rels)
        batch;
      apply_front t
        (List.rev_map (fun rel -> (rel, List.rev !(Hashtbl.find tbl rel))) !rels)

(** Force a recovery attempt on every view that is not healthy,
    ignoring backoff timers and quarantine — the convergence point a
    driver calls at end of stream (or an operator invokes by hand).
    Returns the names still not healthy afterwards. *)
let heal t =
  Rwlock.write t.lock (fun () ->
      t.generation <- t.generation + 1;
      List.iter
        (fun (name, e) -> if e.health <> Healthy then attempt_recovery t name e)
        (List.rev t.entries);
      List.filter_map
        (fun (name, e) -> if e.health <> Healthy then Some name else None)
        t.entries
      |> List.rev)

(** Verify every healthy view's fingerprint against a fresh rebuild
    from the base state; on divergence install the rebuild. Returns the
    names that diverged. Expensive — run it off the hot path, every N
    epochs. *)
let self_check t =
  Rwlock.write t.lock (fun () ->
      t.generation <- t.generation + 1;
      List.filter_map
        (fun (name, e) ->
          if e.health <> Healthy then None
          else
            match try_build e (filtered_db t e.dead) with
            | None ->
                note_failure t name e "self-check rebuild failed";
                Some name
            | Some fresh ->
                if fresh.M.fingerprint () = e.view.M.fingerprint () then None
                else begin
                  count_failure t name;
                  install t name e fresh;
                  Some name
                end)
        (List.rev t.entries))

(** [restore t db] is a fresh registry over [db] with every view rebuilt
    by its registration factory — the recovery path: pair it with a WAL
    replay from the checkpoint's offset. Dead-letter sets carry over, so
    a view poisoned before the checkpoint rebuilds filtered. The
    restored registry runs sequentially unless given its own
    pool/metrics. *)
let restore ?pool ?metrics t db =
  let fresh =
    {
      db;
      pool;
      metrics;
      entries = [];
      backoff_base = t.backoff_base;
      max_failures = t.max_failures;
      rng = Random.State.copy t.rng;
      dead_wal = t.dead_wal;
      lock = Rwlock.create ();
      generation = 0;
    }
  in
  List.iter
    (fun (name, e) ->
      register fresh ~name e.build;
      match List.assoc_opt name fresh.entries with
      | Some e' ->
          e'.dead <- e.dead;
          if e.dead <> [] || e'.health <> Healthy then begin
            (* Rebuild with the inherited filter (register built from
               the raw db, which may still contain the poison). *)
            match try_build e' (filtered_db fresh e'.dead) with
            | Some v -> install fresh name e' v
            | None -> note_failure fresh name e' "restore rebuild failed"
          end
      | None -> ())
    (List.rev t.entries);
  fresh
