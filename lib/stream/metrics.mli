(** Runtime metrics: counters and log-bucketed latency histograms
    (geometric buckets, ≤ 12% relative quantile error, allocation-free
    recording) for the serving loop's p50/p99 reporting. *)

module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile t q] for [q] in [0,1]: the upper edge of the bucket
      holding the [q]-quantile sample; 0 when empty. *)

  val merge_into : into:t -> t -> unit
end

type view = {
  mutable updates : int;
  mutable batches : int;
  mutable failures : int;  (** apply or rebuild failures observed *)
  mutable rebuilds : int;  (** successful recovery / self-check rebuilds *)
  mutable dead_letters : int;  (** poison updates quarantined out of the view *)
  mutable skipped : int;  (** updates skipped while degraded or quarantined *)
  apply : Hist.t;
}

type t = {
  latency : Hist.t;  (** enqueue → applied, per update *)
  mutable epochs : int;
  mutable ingested : int;  (** updates popped off the queue *)
  mutable coalesced : int;  (** updates left after per-epoch coalescing *)
  views : (string, view) Hashtbl.t;
}

val create : unit -> t

val view : t -> string -> view
(** The named view's counters, created on first use. *)

val view_names : t -> string list
val pp : Format.formatter -> t -> unit
