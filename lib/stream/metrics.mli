(** Runtime metrics: counters and log-bucketed latency histograms
    (geometric buckets, ≤ 12% relative quantile error, allocation-free
    recording) for the serving loop's p50/p99 reporting. *)

module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile t q] for [q] in [0,1]: the upper edge of the bucket
      holding the [q]-quantile sample; 0 when empty. *)

  val merge_into : into:t -> t -> unit

  val sum : t -> float
  (** Total of all recorded samples (the histogram [_sum]). *)

  val to_buckets : t -> (float * int) list
  (** Non-empty buckets as [(upper_edge_seconds, count)], ascending —
      the raw form a text exposition renders cumulatively. *)
end

type view = {
  mutable updates : int;
  mutable batches : int;
  mutable failures : int;  (** apply or rebuild failures observed *)
  mutable rebuilds : int;  (** successful recovery / self-check rebuilds *)
  mutable dead_letters : int;  (** poison updates quarantined out of the view *)
  mutable skipped : int;  (** updates skipped while degraded or quarantined *)
  apply : Hist.t;
}

type t = {
  latency : Hist.t;  (** enqueue → applied, per update *)
  mutable epochs : int;
  mutable ingested : int;  (** updates popped off the queue *)
  mutable coalesced : int;  (** updates left after per-epoch coalescing *)
  views : (string, view) Hashtbl.t;
  ops : (string, Hist.t) Hashtbl.t;
      (** per-op-class service latency (network lookups, ingest, ...) *)
  view_ops : (string * string, Hist.t) Hashtbl.t;
      (** [(view, op)]-labelled service latency — the per-tenant series
          of a multi-view server, so one tenant's tail latency is not
          averaged away in the per-process histogram *)
  ops_mutex : Mutex.t;
}

val create : unit -> t

val view : t -> string -> view
(** The named view's counters, created on first use. *)

val view_names : t -> string list

val op : t -> string -> Hist.t
(** The named op class's latency histogram, created on first use. *)

val record_op : t -> string -> float -> unit
(** Record one service-latency sample for an op class. Safe to call
    from concurrent handler domains (serialized on [ops_mutex]); the
    view and latency histograms stay single-writer. *)

val op_names : t -> string list

val record_view_op : t -> view:string -> op:string -> float -> unit
(** Record one service-latency sample for an op on a specific view —
    the per-tenant label pair of the [ivm_view_op_seconds] exposition.
    Same concurrency contract as {!record_op}. *)

val view_op : t -> view:string -> op:string -> Hist.t
(** The [(view, op)] histogram, created on first use. *)

val view_op_series : t -> (string * string) list
(** Every [(view, op)] pair recorded so far, sorted. *)

val render : t -> string
(** Prometheus-style text exposition: every counter as a plain sample,
    every histogram as cumulative [le]-buckets plus [_sum]/[_count] —
    served on the stats wire op and dumped by [ivm_cli serve]. *)

val pp : Format.formatter -> t -> unit
