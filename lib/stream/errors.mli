(** The structured error type of the durability layer ({!Wal},
    {!Checkpoint}): I/O failures, foreign files and corruption as
    values, not exceptions. *)

type t =
  | Io of Ivm_fault.Io.error
  | Bad_magic of { path : string; expected : string }
  | Corrupt of { path : string; detail : string }

val io : Ivm_fault.Io.error -> ('a, t) result
(** [io e] is [Error (Io e)] — the lift used at every I/O call site. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val get_ok : ('a, t) result -> 'a
(** Unwrap, raising [Failure] with the rendered error — for tests and
    call sites that have decided a durability fault is fatal. *)

val injected : t -> bool
(** Whether this error came from an armed failpoint rather than the OS. *)
