(** Checkpoints: a snapshot of the base database paired with the WAL
    offset it is current through.

    The recovery contract is [restore + replay ≡ direct apply]: loading
    a checkpoint, rebuilding views from the restored base state
    ({!Registry.restore}) and replaying the WAL suffix from
    [wal_offset] reproduces exactly the state of a run that never
    crashed. Only base relations are written — every view is a
    deterministic function of the base database, so re-deriving them on
    restore is both simpler and safer than serializing engine
    internals.

    File format: magic, then [u32 length | u32 crc32 | body]; the body
    holds the offset and each relation's name, schema and entries.
    Writes go to a temporary file renamed into place, so a crash during
    checkpointing leaves the previous checkpoint intact. *)

module Codec = Ivm_data.Codec
module Schema = Ivm_data.Schema

let magic = "IVMCKP01"

module Make (R : Ivm_ring.Sigs.SEMIRING) (P : Codec.PAYLOAD with type t = R.t) =
struct
  module Db = Ivm_data.Database.Make (R)
  module Rel = Ivm_data.Relation.Make (R)

  let save path ~(db : Db.t) ~wal_offset =
    let b = Buffer.create 4096 in
    Codec.add_i64 b wal_offset;
    let rels = List.sort compare (Db.relations db) in
    Codec.add_u32 b (List.length rels);
    List.iter
      (fun (name, rel) ->
        Codec.add_str b name;
        let schema = Rel.schema rel in
        Codec.add_u16 b (Schema.arity schema);
        List.iter (Codec.add_str b) (Schema.to_list schema);
        Codec.add_u32 b (Rel.size rel);
        Rel.iter
          (fun tuple p ->
            Codec.add_tuple b tuple;
            P.write b p)
          rel)
      rels;
    let body = Buffer.contents b in
    let len = String.length body in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        let frame = Buffer.create 8 in
        Codec.add_u32 frame len;
        Codec.add_u32 frame (Codec.crc32 body ~pos:0 ~len);
        Buffer.output_buffer oc frame;
        output_string oc body;
        flush oc);
    Sys.rename tmp path

  let load path : Db.t * int =
    let ic = open_in_bin path in
    let body =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = really_input_string ic (String.length magic) in
          if m <> magic then failwith ("Checkpoint.load: bad magic in " ^ path);
          let frame = really_input_string ic 8 in
          let pos = ref 0 in
          let len = Codec.u32 frame pos in
          let crc = Codec.u32 frame pos in
          let body = really_input_string ic len in
          if Codec.crc32 body ~pos:0 ~len <> crc then
            failwith ("Checkpoint.load: checksum mismatch in " ^ path);
          body)
    in
    let pos = ref 0 in
    let wal_offset = Codec.i64 body pos in
    let nrels = Codec.u32 body pos in
    let db = Db.create () in
    for _ = 1 to nrels do
      let name = Codec.str body pos in
      let arity = Codec.u16 body pos in
      let schema = Schema.of_list (List.init arity (fun _ -> Codec.str body pos)) in
      let entries = Codec.u32 body pos in
      let rel = Db.declare db name schema in
      for _ = 1 to entries do
        let tuple = Codec.tuple body pos in
        let p = P.read body pos in
        Rel.set_entry rel tuple p
      done
    done;
    (db, wal_offset)
end

(** The default instance: the Z ring of tuple multiplicities. *)
module Z = Make (Ivm_ring.Int_ring) (Codec.Int_payload)
