(** Checkpoints: a snapshot of the base database paired with the WAL
    offset it is current through.

    The recovery contract is [restore + replay ≡ direct apply]: loading
    a checkpoint, rebuilding views from the restored base state
    ({!Registry.restore}) and replaying the WAL suffix from
    [wal_offset] reproduces exactly the state of a run that never
    crashed. Only base relations are written — every view is a
    deterministic function of the base database, so re-deriving them on
    restore is both simpler and safer than serializing engine
    internals.

    File format: magic, then [u32 length | u32 crc32 | body]; the body
    holds the offset and each relation's name, schema and entries.

    Installation is atomic and durable: the snapshot is written to a
    temporary file, fsync'd, renamed into place, and the containing
    directory fsync'd. A crash at any point leaves either the previous
    checkpoint or the new one — never a torn or unlinked file. All I/O
    goes through {!Ivm_fault.Io} under the ["ckpt"] tag so each of
    those four steps is individually fault-injectable. *)

module Codec = Ivm_data.Codec
module Schema = Ivm_data.Schema
module Io = Ivm_fault.Io

let magic = "IVMCKP01"
let tag = "ckpt"
let ( let* ) = Result.bind
let io_err r = Result.map_error (fun e -> Errors.Io e) r

module Make (R : Ivm_ring.Sigs.SEMIRING) (P : Codec.PAYLOAD with type t = R.t) =
struct
  module Db = Ivm_data.Database.Make (R)
  module Rel = Ivm_data.Relation.Make (R)

  let save path ~(db : Db.t) ~wal_offset : (unit, Errors.t) result =
    let b = Buffer.create 4096 in
    Codec.add_i64 b wal_offset;
    let rels = List.sort compare (Db.relations db) in
    Codec.add_u32 b (List.length rels);
    List.iter
      (fun (name, rel) ->
        Codec.add_str b name;
        let schema = Rel.schema rel in
        Codec.add_u16 b (Schema.arity schema);
        List.iter (Codec.add_str b) (Schema.to_list schema);
        Codec.add_u32 b (Rel.size rel);
        Rel.iter
          (fun tuple p ->
            Codec.add_tuple b tuple;
            P.write b p)
          rel)
      rels;
    let body = Buffer.contents b in
    let len = String.length body in
    let frame = Buffer.create 8 in
    Codec.add_u32 frame len;
    Codec.add_u32 frame (Codec.crc32 body ~pos:0 ~len);
    let tmp = path ^ ".tmp" in
    let result =
      let* oc = io_err (Io.open_trunc ~tag tmp) in
      let write_all =
        let* () = io_err (Io.write oc magic) in
        let* () = io_err (Io.write oc (Buffer.contents frame)) in
        let* () = io_err (Io.write oc body) in
        (* fsync the temp file BEFORE the rename: otherwise the rename
           can become durable while the contents are not, and a crash
           leaves an installed-but-empty checkpoint. *)
        io_err (Io.fsync oc)
      in
      (match write_all with
      | Ok () ->
          Io.close_noerr oc;
          Ok ()
      | Error _ as e ->
          Io.close_noerr oc;
          e)
    in
    let* () =
      match result with
      | Ok () -> Ok ()
      | Error _ as e ->
          Io.remove_noerr tmp;
          e
    in
    let* () =
      match io_err (Io.rename ~tag ~src:tmp ~dst:path) with
      | Ok () -> Ok ()
      | Error _ as e ->
          Io.remove_noerr tmp;
          e
    in
    (* fsync the directory so the rename itself survives a crash. *)
    io_err (Io.fsync_dir ~tag (Filename.dirname path))

  let load path : (Db.t * int, Errors.t) result =
    let* contents = io_err (Io.read_file ~tag path) in
    let total = String.length contents in
    let mlen = String.length magic in
    if total < mlen || String.sub contents 0 mlen <> magic then
      Error (Errors.Bad_magic { path; expected = "checkpoint" })
    else begin
      match
        let pos = ref mlen in
        let len = Codec.u32 contents pos in
        let crc = Codec.u32 contents pos in
        if !pos + len > total then raise (Codec.Corrupt "truncated checkpoint body");
        if Codec.crc32 contents ~pos:!pos ~len <> crc then raise (Codec.Corrupt "checksum mismatch");
        let body = String.sub contents !pos len in
        let pos = ref 0 in
        let wal_offset = Codec.i64 body pos in
        let nrels = Codec.u32 body pos in
        let db = Db.create () in
        for _ = 1 to nrels do
          let name = Codec.str body pos in
          let arity = Codec.u16 body pos in
          let schema = Schema.of_list (List.init arity (fun _ -> Codec.str body pos)) in
          let entries = Codec.u32 body pos in
          let rel = Db.declare db name schema in
          for _ = 1 to entries do
            let tuple = Codec.tuple body pos in
            let p = P.read body pos in
            Rel.set_entry rel tuple p
          done
        done;
        (db, wal_offset)
      with
      | result -> Ok result
      | exception Codec.Corrupt detail -> Error (Errors.Corrupt { path; detail })
    end
end

(** The default instance: the Z ring of tuple multiplicities. *)
module Z = Make (Ivm_ring.Int_ring) (Codec.Int_payload)
