(** A writer-preferring read/write lock: many concurrent readers or one
    writer. A waiting writer blocks new readers, so epoch apply latency
    stays bounded under heavy read load. Not re-entrant — never nest
    {!read} or {!write} calls on the same lock from one domain. *)

type t

val create : unit -> t

val read : t -> (unit -> 'a) -> 'a
(** Run [f] holding a shared lock; concurrent {!read}s proceed,
    {!write} is excluded. The lock is released even if [f] raises. *)

val write : t -> (unit -> 'a) -> 'a
(** Run [f] holding the exclusive lock. *)
