(** The multi-view server: N registered views maintained off one shared
    update stream, with per-view supervision. The registry owns the
    authoritative base database (what checkpoints snapshot) and
    rebuilds any view from its registration factory — on {!restore}
    after a crash, and whenever a view's engine fails at runtime. A
    failing view is degraded (its updates stop flowing; the base
    database still absorbs them), retried with exponential backoff and
    jitter, poison updates are isolated and dead-lettered, and a view
    failing past the threshold is quarantined — all without ever
    blocking the healthy views. *)

module Db = Ivm_data.Database.Z
module M = Ivm_engine.Maintainable

type health = Healthy | Degraded | Quarantined

val health_name : health -> string

type t

val create :
  ?pool:Ivm_par.Domain_pool.t ->
  ?metrics:Metrics.t ->
  ?backoff_base:float ->
  ?max_failures:int ->
  ?seed:int ->
  ?dead_wal:Wal.Z.t ->
  Db.t ->
  t
(** [backoff_base] (default 10 ms) is the first retry delay, doubled
    per consecutive failure with seeded jitter; after [max_failures]
    (default 5) consecutive failures a view is quarantined. [dead_wal]
    receives every dead-lettered poison update. *)

val db : t -> Db.t

val generation : t -> int
(** Bumped under the exclusive lock by every mutating entry point
    (apply, heal, self-check, register). Read it under {!read}: equal
    stamps guarantee identical state — the invalidation key the network
    server uses for its snapshot cache. *)

val read : t -> (unit -> 'a) -> 'a
(** Run [f] under the registry's shared (read) lock: no epoch apply,
    heal, self-check or registration runs concurrently, so [f] sees an
    epoch-consistent snapshot of the base database and every view.
    Concurrent [read]s proceed in parallel; the lock is
    writer-preferring, so readers never starve the maintenance loop.
    The plain accessors below do not lock — wrap them in [read] when
    other domains may be applying updates. Do not nest [read] calls. *)

val register : t -> name:string -> (Db.t -> M.t) -> unit
(** Build a view from the current base database and serve it from now
    on. The factory is kept for {!restore} and for runtime recovery. A
    factory that fails leaves the view degraded (to be retried), not
    the registry broken.
    @raise Invalid_argument on a duplicate name. *)

val declare_table : t -> string -> Ivm_data.Schema.t -> (unit, string) result
(** Declare a new empty base relation in the authoritative database,
    under the exclusive lock with a generation bump — what the SQL front
    end's [CREATE TABLE] goes through. [Error] on a duplicate name. *)

val views : t -> (string * M.t) list
(** In registration order. *)

val view_count : t -> int

val find : t -> string -> M.t
(** @raise Invalid_argument when absent. *)

val counts : t -> (string * int) list
val fingerprints : t -> (string * int) list

val health : t -> string -> health
(** @raise Invalid_argument when absent. *)

val statuses : t -> (string * health) list
val last_error : t -> string -> string option

val dead_letters : t -> (string * (string * Ivm_data.Tuple.t) list) list
(** Per view, the (relation, tuple) pairs dead-lettered out of it, in
    dead-letter order. *)

val apply_front : t -> (string * int Ivm_data.Update.t list) list -> unit
(** Apply one epoch's per-relation delta front (the shape
    {!Scheduler.delta_front} serves) to the base database and to every
    healthy registered view — each view gets the concatenation of the
    relation groups it consumes, routed at group granularity rather
    than by filtering the flat batch per view — concurrently across the
    pool when one was given. A view whose engine raises is degraded and
    scheduled for recovery; this call itself never raises on view
    failure. *)

val apply_batch : t -> int Ivm_data.Update.t list -> unit
(** {!apply_front} of a flat batch, grouped per relation (order
    preserved within each relation — sound because ring payloads make
    the updates of one batch commute). The recovery-replay and test
    entry point; the scheduler itself routes its front directly. *)

val heal : t -> string list
(** Force a recovery attempt on every non-healthy view, ignoring
    backoff timers and quarantine; returns the names still not healthy
    afterwards. The convergence point a driver calls at end of
    stream. *)

val self_check : t -> string list
(** Verify every healthy view's fingerprint against a fresh rebuild
    from the base state, installing the rebuild on divergence; returns
    the diverged names. Expensive — run off the hot path. *)

val restore : ?pool:Ivm_par.Domain_pool.t -> ?metrics:Metrics.t -> t -> Db.t -> t
(** A fresh registry over [db] with every view rebuilt by its
    registration factory — the recovery path, paired with a WAL replay
    from the checkpoint's offset. Dead-letter sets carry over. *)
