(** The multi-view server: N registered views maintained off one shared
    update stream. The registry owns the authoritative base database
    (what checkpoints snapshot) and rebuilds every view from its
    registration factory on {!restore} — recovery without
    engine-specific serialization. Independent views fan out across an
    {!Ivm_par.Domain_pool}: they share no state, so this is plain task
    parallelism over disjoint structures. *)

module Db = Ivm_data.Database.Z
module M = Ivm_engine.Maintainable

type t

val create : ?pool:Ivm_par.Domain_pool.t -> ?metrics:Metrics.t -> Db.t -> t
val db : t -> Db.t

val register : t -> name:string -> (Db.t -> M.t) -> unit
(** Build a view from the current base database and serve it from now
    on. The factory is kept for {!restore}.
    @raise Invalid_argument on a duplicate name. *)

val views : t -> (string * M.t) list
(** In registration order. *)

val view_count : t -> int

val find : t -> string -> M.t
(** @raise Invalid_argument when absent. *)

val counts : t -> (string * int) list
val fingerprints : t -> (string * int) list

val apply_batch : t -> int Ivm_data.Update.t list -> unit
(** Apply a batch to the base database and to every registered view
    (each view sees only the updates on its relations), concurrently
    across the pool when one was given. *)

val restore : ?pool:Ivm_par.Domain_pool.t -> ?metrics:Metrics.t -> t -> Db.t -> t
(** A fresh registry over [db] with every view rebuilt by its
    registration factory — the recovery path, paired with a WAL replay
    from the checkpoint's offset. *)
