(** The epoch micro-batcher: pops queued updates, logs them durably
    (WAL append + sync before any view applies them), coalesces per
    (relation, tuple) with the ring add — sound by batch commutativity
    (Sec. 2) — and feeds the registry. The batch cap adapts to observed
    epoch apply latency: halved over 1.5x target, doubled when a full
    epoch runs under half the target. *)

type item = { update : int Ivm_data.Update.t; enqueued_at : float }

val item : int Ivm_data.Update.t -> item
(** Stamp an update with the current time — what producers enqueue. *)

type t

val create :
  ?wal:Wal.Z.t ->
  ?target_latency:float ->
  ?min_batch:int ->
  ?max_batch:int ->
  ?initial_batch:int ->
  ?sync_retries:int ->
  ?self_check_every:int ->
  ?on_apply:(epoch:int -> (string * int Ivm_data.Update.t list) list -> unit) ->
  queue:item Queue.t ->
  registry:Registry.t ->
  metrics:Metrics.t ->
  unit ->
  t
(** Defaults: 2 ms target latency, batch cap adapting within
    [16, 65536] starting at 1024. Without [wal] the runtime is
    in-memory only. A failed WAL fsync is retried [sync_retries]
    (default 3) times before the epoch errors out. With
    [self_check_every], the registry fingerprint self-check runs every
    that many epochs. [on_apply] is called after every non-empty epoch
    with the per-relation coalesced delta front the views just absorbed
    (the same value {!delta_front} then serves) — the delta
    subscription fan-out of the network server; it runs on the
    scheduler domain, so it must be fast and must not raise. *)

val batch_limit : t -> int
(** The current adaptive batch cap. *)

val applied : t -> int
(** Updates applied so far (before coalescing). *)

val metrics : t -> Metrics.t
val registry : t -> Registry.t

val delta_front : t -> (string * int Ivm_data.Update.t list) list
(** The per-relation coalesced delta front of the most recently applied
    epoch: relation → the coalesced updates the views absorbed for it.
    This is the single authoritative grouping of an epoch's delta —
    consumers (delta fan-out, dataflow graphs, the cluster barrier
    path) read it here instead of re-deriving it from a flat batch.
    Valid from within [on_apply] and until the next epoch applies; the
    scheduler domain owns it, so cross-domain readers must fence (e.g.
    {!barrier}) first. *)

val coalesce_front : t -> item list -> (string * int Ivm_data.Update.t list) list
(** Per-(relation, tuple) ring-add coalescing with zero elision,
    grouped per relation. The accumulators are owned by the scheduler
    and reused across epochs (capacity-preserving clear after each
    emit); exposed for tests. *)

val coalesce : t -> item list -> int Ivm_data.Update.t list
(** {!coalesce_front} flattened — relations concatenated. *)

val step : t -> (bool, Errors.t) result
(** Run one epoch; [Ok false] means the stream ended (queue closed and
    drained). [Error _] is a durability failure: the popped updates
    were {e not} applied — crash-and-recover semantics, they replay
    from the last durable state. View failures never surface here;
    the registry's supervision absorbs them. *)

val run : ?on_epoch:(t -> unit) -> t -> (unit, Errors.t) result
(** Drain the stream to its end, calling [on_epoch] after every epoch
    (live stats, periodic checkpoints); stops at the first durability
    error. *)

val barrier : t -> (int, string) result
(** Epoch fence: block until every update the queue had admitted at the
    moment of this call has been applied (and, with a WAL, synced —
    durability precedes apply), then return the epoch counter. Callers
    wanting a cluster-consistent cut pause ingest first, fence every
    node, and only then read. Safe from any domain; fails instead of
    hanging if the scheduler loop exits (stream end or durability
    error) before the fence is reached. *)

val abort : t -> unit
(** Mark the scheduler finished and wake every {!barrier} waiter (they
    fail cleanly). For supervisors whose driving loop died via an
    exception that bypassed {!step}'s own finished signal. *)
