(** A bounded multi-producer single-consumer update queue with a
    backpressure policy, between stream producers and the maintenance
    loop. {!Block} is lossless (producers stall); {!Drop_newest} rejects
    the offered item when full; {!Drop_oldest} evicts the oldest to
    admit the new ("keep latest"). Dropping is only sound for views that
    tolerate an incomplete stream; the serving runtime defaults to
    {!Block}. *)

type policy = Block | Drop_newest | Drop_oldest

val policy_name : policy -> string

type 'a t

val create : ?capacity:int -> policy -> 'a t
(** Default capacity 8192. @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val policy : 'a t -> policy
val length : 'a t -> int

val pushed : 'a t -> int
(** Items admitted so far. *)

val dropped : 'a t -> int
(** Items rejected or evicted so far. *)

val is_closed : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Offer an item; [false] means it was not admitted (full queue under
    {!Drop_newest}, or a closed queue). Blocks only under {!Block}. *)

val close : 'a t -> unit
(** Future pushes are rejected; the consumer drains what remains and
    then sees the end of the stream. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Block until at least one item is available, then drain up to [max]
    in FIFO order. The empty list is the end of the stream (closed and
    fully drained). Single consumer only. *)
