(** A bounded multi-producer single-consumer update queue — the
    ingestion buffer between producers (clients, generators, replicas)
    and the maintenance loop.

    The full-queue [policy] is the backpressure contract:
    - {!Block}: producers wait for space — lossless, throughput degrades
      to the consumer's rate;
    - {!Drop_newest}: the offered item is rejected (push returns
      [false]) — lossy, producers never stall;
    - {!Drop_oldest}: the oldest queued item is discarded to admit the
      new one — "keep latest", for monitoring-style consumers that
      prefer fresh updates over complete ones.

    Dropping updates is only sound for views that tolerate an incomplete
    stream (approximate dashboards); the serving runtime defaults to
    {!Block}, which preserves the exact-maintenance guarantees. *)

type policy = Block | Drop_newest | Drop_oldest

let policy_name = function
  | Block -> "block"
  | Drop_newest -> "drop"
  | Drop_oldest -> "latest"

type 'a t = {
  capacity : int;
  policy : policy;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : 'a Stdlib.Queue.t;
  mutable closed : bool;
  mutable pushed : int; (* accepted items *)
  mutable dropped : int; (* rejected or evicted items *)
}

let create ?(capacity = 8192) policy =
  if capacity < 1 then invalid_arg "Queue.create: capacity < 1";
  {
    capacity;
    policy;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Stdlib.Queue.create ();
    closed = false;
    pushed = 0;
    dropped = 0;
  }

let capacity t = t.capacity
let policy t = t.policy

let length t =
  Mutex.lock t.mutex;
  let n = Stdlib.Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let pushed t = t.pushed
let dropped t = t.dropped
let is_closed t = t.closed

(** [push t x] offers [x]; [false] means the item was not admitted (full
    queue under {!Drop_newest}, or a closed queue). *)
let push t x =
  Mutex.lock t.mutex;
  let admitted =
    if t.closed then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      (match t.policy with
      | Block ->
          while Stdlib.Queue.length t.items >= t.capacity && not t.closed do
            Condition.wait t.not_full t.mutex
          done
      | Drop_newest | Drop_oldest -> ());
      if t.closed then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else if Stdlib.Queue.length t.items >= t.capacity then
        match t.policy with
        | Block -> assert false
        | Drop_newest ->
            t.dropped <- t.dropped + 1;
            false
        | Drop_oldest ->
            ignore (Stdlib.Queue.pop t.items);
            t.dropped <- t.dropped + 1;
            Stdlib.Queue.push x t.items;
            t.pushed <- t.pushed + 1;
            true
      else begin
        Stdlib.Queue.push x t.items;
        t.pushed <- t.pushed + 1;
        true
      end
    end
  in
  if admitted then Condition.signal t.not_empty;
  Mutex.unlock t.mutex;
  admitted

(** Close the queue: future pushes are rejected; the consumer drains
    what remains and then sees the end of the stream. *)
let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

(** [pop_batch t ~max] blocks until at least one item is available, then
    drains up to [max] items in FIFO order. The empty list is the end of
    the stream: the queue is closed and fully drained. *)
let pop_batch t ~max:limit =
  if limit < 1 then invalid_arg "Queue.pop_batch: max < 1";
  Mutex.lock t.mutex;
  while Stdlib.Queue.is_empty t.items && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  let out = ref [] in
  let n = ref 0 in
  while !n < limit && not (Stdlib.Queue.is_empty t.items) do
    out := Stdlib.Queue.pop t.items :: !out;
    incr n
  done;
  if !n > 0 then Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  List.rev !out
