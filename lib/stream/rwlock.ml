(** A writer-preferring read/write lock: the concurrency seam between
    the maintenance loop (one writer per epoch) and network read
    handlers (many concurrent readers).

    Readers run concurrently with each other; a writer runs alone.
    Writer preference — a waiting writer blocks *new* readers — keeps
    epoch apply latency bounded under read load: an epoch waits for the
    readers already in flight, never for readers that arrived after it.
    The locks are not re-entrant: a reader that calls {!read} again
    while a writer is queued deadlocks, so lock acquisition lives only
    at public entry points, never in internal helpers. *)

type t = {
  mutex : Mutex.t;
  ok_read : Condition.t;
  ok_write : Condition.t;
  mutable readers : int; (* readers currently inside *)
  mutable writing : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    ok_read = Condition.create ();
    ok_write = Condition.create ();
    readers = 0;
    writing = false;
    waiting_writers = 0;
  }

let read t f =
  Mutex.lock t.mutex;
  while t.writing || t.waiting_writers > 0 do
    Condition.wait t.ok_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex;
  let finally () =
    Mutex.lock t.mutex;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.broadcast t.ok_write;
    Mutex.unlock t.mutex
  in
  Fun.protect ~finally f

let write t f =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writing || t.readers > 0 do
    Condition.wait t.ok_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writing <- true;
  Mutex.unlock t.mutex;
  let finally () =
    Mutex.lock t.mutex;
    t.writing <- false;
    Condition.broadcast t.ok_write;
    Condition.broadcast t.ok_read;
    Mutex.unlock t.mutex
  in
  Fun.protect ~finally f
