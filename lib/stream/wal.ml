(** A durable append-only update log (write-ahead log).

    The paper's model is an unbounded stream of single-tuple updates
    (Sec. 2); the WAL is that stream made durable: every update is
    framed as [u32 length | u32 crc32 | body] where the body is the
    {!Ivm_data.Codec} encoding of the update. Offsets are byte positions
    in the file; {!append} returns the offset *after* the record, which
    is exactly the replay cursor a checkpoint pairs with its snapshot —
    restore the snapshot, replay the suffix, and the state is as if the
    log had been applied directly (asserted in [test/test_stream.ml]).

    Crash tolerance: a torn tail (a record cut short by a crash, or one
    whose checksum fails) terminates replay at the last complete record;
    {!open_log} truncates such a tail so later appends extend a valid
    prefix rather than burying records behind garbage. *)

module Codec = Ivm_data.Codec
module Update = Ivm_data.Update

let magic = "IVMWAL01"
let header_len = String.length magic

module Make (P : Codec.PAYLOAD) = struct
  type t = {
    path : string;
    oc : out_channel;
    buf : Buffer.t;
    mutable offset : int; (* bytes of valid log written, including magic *)
  }

  (* Scan an existing file and return the length of its valid prefix:
     the magic plus every complete, checksum-correct record. *)
  let valid_prefix path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let file_len = in_channel_length ic in
        if file_len < header_len then 0
        else begin
          let m = really_input_string ic header_len in
          if m <> magic then 0
          else begin
            let ok = ref header_len in
            (try
               while true do
                 let frame = really_input_string ic 8 in
                 let pos = ref 0 in
                 let len = Codec.u32 frame pos in
                 let crc = Codec.u32 frame pos in
                 if !ok + 8 + len > file_len then raise Exit;
                 let body = really_input_string ic len in
                 if Codec.crc32 body ~pos:0 ~len <> crc then raise Exit;
                 ok := !ok + 8 + len
               done
             with End_of_file | Exit -> ());
            !ok
          end
        end)

  let open_log path =
    let valid = if Sys.file_exists path then valid_prefix path else -1 in
    if valid >= header_len && valid < (Unix.stat path).Unix.st_size then
      (* Torn tail from a previous crash: cut it off before appending. *)
      Unix.truncate path valid;
    let fresh = valid < header_len in
    if fresh && Sys.file_exists path then Sys.remove path;
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
    if fresh then output_string oc magic;
    flush oc;
    { path; oc; buf = Buffer.create 256; offset = (if fresh then header_len else valid) }

  let offset t = t.offset
  let path t = t.path

  let append t (u : P.t Update.t) =
    Buffer.clear t.buf;
    Codec.add_update (module P) t.buf u;
    let body = Buffer.contents t.buf in
    let len = String.length body in
    Buffer.clear t.buf;
    Codec.add_u32 t.buf len;
    Codec.add_u32 t.buf (Codec.crc32 body ~pos:0 ~len);
    Buffer.add_string t.buf body;
    Buffer.output_buffer t.oc t.buf;
    t.offset <- t.offset + 8 + len;
    t.offset

  let append_batch t batch = List.fold_left (fun _ u -> append t u) t.offset batch

  let sync t = flush t.oc

  let close t =
    flush t.oc;
    close_out_noerr t.oc

  (** [replay path ~from f] feeds every complete record at offset
      [>= from] to [f] and returns the offset after the last one — the
      next replay cursor. [from <= header_len] starts at the first
      record. A torn or corrupt tail silently ends the replay: those
      bytes were never acknowledged as applied by anyone. *)
  let replay path ~from f =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let file_len = in_channel_length ic in
        if file_len < header_len then header_len
        else begin
          let m = really_input_string ic header_len in
          if m <> magic then invalid_arg ("Wal.replay: bad magic in " ^ path);
          let cursor = ref (max from header_len) in
          seek_in ic !cursor;
          (try
             while true do
               let frame = really_input_string ic 8 in
               let pos = ref 0 in
               let len = Codec.u32 frame pos in
               let crc = Codec.u32 frame pos in
               if !cursor + 8 + len > file_len then raise Exit;
               let body = really_input_string ic len in
               if Codec.crc32 body ~pos:0 ~len <> crc then raise Exit;
               let u = Codec.update (module P) body (ref 0) in
               cursor := !cursor + 8 + len;
               f u
             done
           with End_of_file | Exit | Codec.Corrupt _ -> ());
          !cursor
        end)
end

(** The default instance: integer-multiplicity updates (the Z ring). *)
module Z = Make (Codec.Int_payload)
