(** A durable append-only update log (write-ahead log).

    The paper's model is an unbounded stream of single-tuple updates
    (Sec. 2); the WAL is that stream made durable: every update is
    framed as [u32 length | u32 crc32 | body] where the body is the
    {!Ivm_data.Codec} encoding of the update. Offsets are byte positions
    in the file; {!append} returns the offset *after* the record, which
    is exactly the replay cursor a checkpoint pairs with its snapshot —
    restore the snapshot, replay the suffix, and the state is as if the
    log had been applied directly (asserted in [test/test_stream.ml]).

    Every load-and-append path is result-typed: real disk errors and
    injected faults (the log routes all file I/O through
    {!Ivm_fault.Io} under the ["wal"] tag) come back as
    {!Errors.t} values, so the scheduler can retry a failed fsync and a
    crash harness can treat a torn write as a kill point instead of an
    uncaught exception.

    Crash tolerance: a torn tail (a record cut short by a crash, or one
    whose checksum fails) terminates replay at the last complete record;
    {!open_log} truncates such a tail so later appends extend a valid
    prefix rather than burying records behind garbage. *)

module Codec = Ivm_data.Codec
module Update = Ivm_data.Update
module Io = Ivm_fault.Io

let magic = "IVMWAL01"
let header_len = String.length magic
let tag = "wal"
let ( let* ) = Result.bind

module Make (P : Codec.PAYLOAD) = struct
  type t = {
    path : string;
    out : Io.out;
    buf : Buffer.t;
    mutable offset : int; (* bytes of valid log written, including magic *)
  }

  (* Scan an existing file and return the length of its valid prefix:
     the magic plus every complete, checksum-correct record. *)
  let valid_prefix path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let file_len = in_channel_length ic in
        if file_len < header_len then 0
        else begin
          let m = really_input_string ic header_len in
          if m <> magic then 0
          else begin
            let ok = ref header_len in
            (try
               while true do
                 let frame = really_input_string ic 8 in
                 let pos = ref 0 in
                 let len = Codec.u32 frame pos in
                 let crc = Codec.u32 frame pos in
                 if !ok + 8 + len > file_len then raise Exit;
                 let body = really_input_string ic len in
                 if Codec.crc32 body ~pos:0 ~len <> crc then raise Exit;
                 ok := !ok + 8 + len
               done
             with End_of_file | Exit -> ());
            !ok
          end
        end)

  let open_log path : (t, Errors.t) result =
    let* valid =
      if not (Sys.file_exists path) then Ok (-1)
      else
        match valid_prefix path with
        | v -> Ok v
        | exception Sys_error m -> Errors.io { Io.op = "scan"; path; detail = m; injected = false }
    in
    let* () =
      if valid >= header_len && valid < (Unix.stat path).Unix.st_size then
        (* Torn tail from a previous crash: cut it off before appending. *)
        Result.map_error (fun e -> Errors.Io e) (Io.truncate ~tag path valid)
      else Ok ()
    in
    let fresh = valid < header_len in
    if fresh && Sys.file_exists path then Io.remove_noerr path;
    let* out = Result.map_error (fun e -> Errors.Io e) (Io.open_append ~tag path) in
    let* () = if fresh then Result.map_error (fun e -> Errors.Io e) (Io.write out magic) else Ok () in
    let* () = Result.map_error (fun e -> Errors.Io e) (Io.flush_out out) in
    Ok { path; out; buf = Buffer.create 256; offset = (if fresh then header_len else valid) }

  let offset t = t.offset
  let path t = t.path

  let append t (u : P.t Update.t) : (int, Errors.t) result =
    Buffer.clear t.buf;
    Codec.add_update (module P) t.buf u;
    let body = Buffer.contents t.buf in
    let len = String.length body in
    Buffer.clear t.buf;
    Codec.add_u32 t.buf len;
    Codec.add_u32 t.buf (Codec.crc32 body ~pos:0 ~len);
    Buffer.add_string t.buf body;
    match Io.write t.out (Buffer.contents t.buf) with
    | Ok () ->
        t.offset <- t.offset + 8 + len;
        Ok t.offset
    | Error e -> Errors.io e

  let append_batch t batch : (int, Errors.t) result =
    List.fold_left
      (fun acc u ->
        let* _ = acc in
        append t u)
      (Ok t.offset) batch

  (** Make everything appended so far durable: flush and [fsync]. *)
  let sync t : (unit, Errors.t) result =
    Result.map_error (fun e -> Errors.Io e) (Io.fsync t.out)

  let close t =
    ignore (Io.flush_out t.out);
    Io.close_noerr t.out

  (** Simulate a crash: drop buffered (never-synced) bytes and close the
      descriptor. What a recovery will replay is exactly the durable
      prefix. *)
  let crash t = Io.crash t.out

  (** [replay path ~from f] feeds every complete record at offset
      [>= from] to [f] and returns the offset after the last one — the
      next replay cursor. [from <= header_len] starts at the first
      record. A torn or corrupt tail silently ends the replay: those
      bytes were never acknowledged as applied by anyone. A missing or
      foreign file is an error — replaying it would silently lose the
      whole log. *)
  let replay path ~from f : (int, Errors.t) result =
    let* contents = Result.map_error (fun e -> Errors.Io e) (Io.read_file ~tag path) in
    let file_len = String.length contents in
    if file_len < header_len then
      if String.sub contents 0 file_len = String.sub magic 0 file_len then Ok header_len
      else Error (Errors.Bad_magic { path; expected = "WAL" })
    else if String.sub contents 0 header_len <> magic then
      Error (Errors.Bad_magic { path; expected = "WAL" })
    else begin
      let cursor = ref (max from header_len) in
      (try
         while !cursor + 8 <= file_len do
           let pos = ref !cursor in
           let len = Codec.u32 contents pos in
           let crc = Codec.u32 contents pos in
           if !cursor + 8 + len > file_len then raise Exit;
           if Codec.crc32 contents ~pos:!pos ~len <> crc then raise Exit;
           let body = String.sub contents !pos len in
           let u = Codec.update (module P) body (ref 0) in
           cursor := !cursor + 8 + len;
           f u
         done
       with Exit | Codec.Corrupt _ -> ());
      Ok !cursor
    end

  (** The number of complete records in the log — what a producer-side
      driver uses as "how many updates are durable" after a crash. *)
  let record_count path : (int, Errors.t) result =
    let n = ref 0 in
    let* _ = replay path ~from:0 (fun _ -> incr n) in
    Ok !n
end

(** The default instance: integer-multiplicity updates (the Z ring). *)
module Z = Make (Codec.Int_payload)
