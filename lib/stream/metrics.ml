(** Runtime metrics: counters and log-bucketed latency histograms.

    A histogram is an array of geometrically spaced buckets from 100 ns
    to ~10⁴ s (ratio 1.25 per bucket, ≤ 12% relative quantile error),
    so recording a sample is two integer ops and no allocation — cheap
    enough to time every epoch on the hot maintenance loop. Percentiles
    (p50/p99 of enqueue→applied latency) are read off the cumulative
    bucket counts. *)

module Hist = struct
  let buckets = 128
  let floor_ns = 1e-7 (* 100 ns *)
  let ratio = 1.25
  let log_ratio = log ratio

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () = { counts = Array.make buckets 0; n = 0; sum = 0.; max = 0. }

  let bucket_of dt =
    if dt <= floor_ns then 0
    else min (buckets - 1) (1 + int_of_float (log (dt /. floor_ns) /. log_ratio))

  (* The representative value of a bucket: its upper edge, so quantiles
     are conservative (never under-reported). *)
  let value_of i = if i = 0 then floor_ns else floor_ns *. (ratio ** float_of_int i)

  let add t dt =
    t.counts.(bucket_of dt) <- t.counts.(bucket_of dt) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. dt;
    if dt > t.max then t.max <- dt

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let max_value t = t.max

  (** [percentile t q] for [q] in [0,1]: the upper edge of the bucket
      holding the [q]-quantile sample, 0 when empty. *)
  let percentile t q =
    if t.n = 0 then 0.
    else begin
      let rank = int_of_float (ceil (q *. float_of_int t.n)) in
      let rank = Stdlib.max 1 (Stdlib.min t.n rank) in
      let acc = ref 0 and result = ref (value_of (buckets - 1)) in
      (try
         for i = 0 to buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             result := value_of i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let merge_into ~into t =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
    into.n <- into.n + t.n;
    into.sum <- into.sum +. t.sum;
    if t.max > into.max then into.max <- t.max

  let sum t = t.sum

  (** The non-empty buckets as [(upper_edge_seconds, count)], ascending —
      what a text exposition renders cumulatively. *)
  let to_buckets t =
    let out = ref [] in
    for i = buckets - 1 downto 0 do
      if t.counts.(i) > 0 then out := (value_of i, t.counts.(i)) :: !out
    done;
    !out
end

(** Per-view counters: how many updates and batches this view absorbed,
    the distribution of its batch-apply times, and the supervision
    counters (failures observed, recovery rebuilds, dead-lettered poison
    updates, updates skipped while the view was not healthy). *)
type view = {
  mutable updates : int;
  mutable batches : int;
  mutable failures : int;
  mutable rebuilds : int;
  mutable dead_letters : int;
  mutable skipped : int;
  apply : Hist.t;
}

type t = {
  latency : Hist.t; (* enqueue -> applied, per update *)
  mutable epochs : int;
  mutable ingested : int; (* updates popped off the queue *)
  mutable coalesced : int; (* updates after per-epoch coalescing *)
  views : (string, view) Hashtbl.t;
  ops : (string, Hist.t) Hashtbl.t; (* per-op-class service latency *)
  view_ops : (string * string, Hist.t) Hashtbl.t;
      (* (view, op) service latency: the per-tenant series a multi-view
         server exposes so one tenant's tail is not averaged away in
         the per-process histogram *)
  ops_mutex : Mutex.t; (* ops are recorded from concurrent handler domains *)
}

let create () =
  {
    latency = Hist.create ();
    epochs = 0;
    ingested = 0;
    coalesced = 0;
    views = Hashtbl.create 8;
    ops = Hashtbl.create 8;
    view_ops = Hashtbl.create 16;
    ops_mutex = Mutex.create ();
  }

let view t name =
  match Hashtbl.find_opt t.views name with
  | Some v -> v
  | None ->
      let v =
        {
          updates = 0;
          batches = 0;
          failures = 0;
          rebuilds = 0;
          dead_letters = 0;
          skipped = 0;
          apply = Hist.create ();
        }
      in
      Hashtbl.add t.views name v;
      v

let view_names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.views [])

let op t name =
  Mutex.lock t.ops_mutex;
  let h =
    match Hashtbl.find_opt t.ops name with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add t.ops name h;
        h
  in
  Mutex.unlock t.ops_mutex;
  h

(* Op histograms are written from concurrent handler domains, so the
   record path takes the mutex; view/latency histograms keep their
   lock-free single-writer discipline (only the scheduler domain). *)
let record_op t name dt =
  Mutex.lock t.ops_mutex;
  (match Hashtbl.find_opt t.ops name with
  | Some h -> Hist.add h dt
  | None ->
      let h = Hist.create () in
      Hist.add h dt;
      Hashtbl.add t.ops name h);
  Mutex.unlock t.ops_mutex

(* Same discipline as {!record_op}: concurrent handler domains, so the
   table and histograms live behind the ops mutex. *)
let record_view_op t ~view ~op dt =
  Mutex.lock t.ops_mutex;
  (match Hashtbl.find_opt t.view_ops (view, op) with
  | Some h -> Hist.add h dt
  | None ->
      let h = Hist.create () in
      Hist.add h dt;
      Hashtbl.add t.view_ops (view, op) h);
  Mutex.unlock t.ops_mutex

let view_op_series t =
  Mutex.lock t.ops_mutex;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.view_ops [] in
  Mutex.unlock t.ops_mutex;
  List.sort compare keys

let view_op t ~view ~op =
  Mutex.lock t.ops_mutex;
  let h =
    match Hashtbl.find_opt t.view_ops (view, op) with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add t.view_ops (view, op) h;
        h
  in
  Mutex.unlock t.ops_mutex;
  h

let op_names t =
  Mutex.lock t.ops_mutex;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.ops [] in
  Mutex.unlock t.ops_mutex;
  List.sort compare names

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition: counters as plain samples,
   histograms as cumulative le-buckets plus _sum and _count. Served on
   the stats wire op and dumped by `ivm_cli serve`.                    *)

(* A # TYPE header appears once per metric name, before its first
   sample, even when the metric repeats with different label sets. *)
let typed seen buf name kind =
  if not (Hashtbl.mem seen name) then begin
    Hashtbl.add seen name ();
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  end

let add_histogram seen buf name labels h =
  let label extra =
    match labels @ extra with
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
        ^ "}"
  in
  typed seen buf name "histogram";
  let cum = ref 0 in
  List.iter
    (fun (edge, count) ->
      cum := !cum + count;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (label [ ("le", Printf.sprintf "%g" edge) ])
           !cum))
    (Hist.to_buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" name (label [ ("le", "+Inf") ]) (Hist.count h));
  Buffer.add_string buf (Printf.sprintf "%s_sum%s %g\n" name (label []) (Hist.sum h));
  Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name (label []) (Hist.count h))

let add_counter seen buf name labels v =
  let label =
    match labels with
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
        ^ "}"
  in
  typed seen buf name "counter";
  Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name label v)

let render t =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 16 in
  add_counter seen buf "ivm_epochs_total" [] t.epochs;
  add_counter seen buf "ivm_ingested_total" [] t.ingested;
  add_counter seen buf "ivm_coalesced_total" [] t.coalesced;
  add_histogram seen buf "ivm_update_latency_seconds" [] t.latency;
  List.iter
    (fun name ->
      let v = view t name in
      let l = [ ("view", name) ] in
      add_counter seen buf "ivm_view_updates_total" l v.updates;
      add_counter seen buf "ivm_view_batches_total" l v.batches;
      add_counter seen buf "ivm_view_failures_total" l v.failures;
      add_counter seen buf "ivm_view_rebuilds_total" l v.rebuilds;
      add_counter seen buf "ivm_view_dead_letters_total" l v.dead_letters;
      add_counter seen buf "ivm_view_skipped_total" l v.skipped;
      add_histogram seen buf "ivm_view_apply_seconds" l v.apply)
    (view_names t);
  List.iter
    (fun name -> add_histogram seen buf "ivm_op_seconds" [ ("op", name) ] (op t name))
    (op_names t);
  List.iter
    (fun (view, opn) ->
      add_histogram seen buf "ivm_view_op_seconds"
        [ ("view", view); ("op", opn) ]
        (view_op t ~view ~op:opn))
    (view_op_series t);
  Buffer.contents buf

let us v = v *. 1e6

let pp ppf t =
  Format.fprintf ppf
    "@[<v>epochs %d, ingested %d, coalesced %d; latency p50 %.1fus p99 %.1fus max %.1fus@,"
    t.epochs t.ingested t.coalesced
    (us (Hist.percentile t.latency 0.5))
    (us (Hist.percentile t.latency 0.99))
    (us (Hist.max_value t.latency));
  List.iter
    (fun name ->
      let v = view t name in
      Format.fprintf ppf "view %-24s %9d upd %7d batches, apply p50 %.1fus p99 %.1fus%t@,"
        name v.updates v.batches
        (us (Hist.percentile v.apply 0.5))
        (us (Hist.percentile v.apply 0.99))
        (fun ppf ->
          if v.failures + v.rebuilds + v.dead_letters + v.skipped > 0 then
            Format.fprintf ppf "; %d failures %d rebuilds %d dead-lettered %d skipped"
              v.failures v.rebuilds v.dead_letters v.skipped))
    (view_names t);
  Format.fprintf ppf "@]"
