(** Runtime metrics: counters and log-bucketed latency histograms.

    A histogram is an array of geometrically spaced buckets from 100 ns
    to ~10⁴ s (ratio 1.25 per bucket, ≤ 12% relative quantile error),
    so recording a sample is two integer ops and no allocation — cheap
    enough to time every epoch on the hot maintenance loop. Percentiles
    (p50/p99 of enqueue→applied latency) are read off the cumulative
    bucket counts. *)

module Hist = struct
  let buckets = 128
  let floor_ns = 1e-7 (* 100 ns *)
  let ratio = 1.25
  let log_ratio = log ratio

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () = { counts = Array.make buckets 0; n = 0; sum = 0.; max = 0. }

  let bucket_of dt =
    if dt <= floor_ns then 0
    else min (buckets - 1) (1 + int_of_float (log (dt /. floor_ns) /. log_ratio))

  (* The representative value of a bucket: its upper edge, so quantiles
     are conservative (never under-reported). *)
  let value_of i = if i = 0 then floor_ns else floor_ns *. (ratio ** float_of_int i)

  let add t dt =
    t.counts.(bucket_of dt) <- t.counts.(bucket_of dt) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. dt;
    if dt > t.max then t.max <- dt

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let max_value t = t.max

  (** [percentile t q] for [q] in [0,1]: the upper edge of the bucket
      holding the [q]-quantile sample, 0 when empty. *)
  let percentile t q =
    if t.n = 0 then 0.
    else begin
      let rank = int_of_float (ceil (q *. float_of_int t.n)) in
      let rank = Stdlib.max 1 (Stdlib.min t.n rank) in
      let acc = ref 0 and result = ref (value_of (buckets - 1)) in
      (try
         for i = 0 to buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             result := value_of i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let merge_into ~into t =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
    into.n <- into.n + t.n;
    into.sum <- into.sum +. t.sum;
    if t.max > into.max then into.max <- t.max
end

(** Per-view counters: how many updates and batches this view absorbed,
    the distribution of its batch-apply times, and the supervision
    counters (failures observed, recovery rebuilds, dead-lettered poison
    updates, updates skipped while the view was not healthy). *)
type view = {
  mutable updates : int;
  mutable batches : int;
  mutable failures : int;
  mutable rebuilds : int;
  mutable dead_letters : int;
  mutable skipped : int;
  apply : Hist.t;
}

type t = {
  latency : Hist.t; (* enqueue -> applied, per update *)
  mutable epochs : int;
  mutable ingested : int; (* updates popped off the queue *)
  mutable coalesced : int; (* updates after per-epoch coalescing *)
  views : (string, view) Hashtbl.t;
}

let create () =
  {
    latency = Hist.create ();
    epochs = 0;
    ingested = 0;
    coalesced = 0;
    views = Hashtbl.create 8;
  }

let view t name =
  match Hashtbl.find_opt t.views name with
  | Some v -> v
  | None ->
      let v =
        {
          updates = 0;
          batches = 0;
          failures = 0;
          rebuilds = 0;
          dead_letters = 0;
          skipped = 0;
          apply = Hist.create ();
        }
      in
      Hashtbl.add t.views name v;
      v

let view_names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.views [])

let us v = v *. 1e6

let pp ppf t =
  Format.fprintf ppf
    "@[<v>epochs %d, ingested %d, coalesced %d; latency p50 %.1fus p99 %.1fus max %.1fus@,"
    t.epochs t.ingested t.coalesced
    (us (Hist.percentile t.latency 0.5))
    (us (Hist.percentile t.latency 0.99))
    (us (Hist.max_value t.latency));
  List.iter
    (fun name ->
      let v = view t name in
      Format.fprintf ppf "view %-24s %9d upd %7d batches, apply p50 %.1fus p99 %.1fus%t@,"
        name v.updates v.batches
        (us (Hist.percentile v.apply 0.5))
        (us (Hist.percentile v.apply 0.99))
        (fun ppf ->
          if v.failures + v.rebuilds + v.dead_letters + v.skipped > 0 then
            Format.fprintf ppf "; %d failures %d rebuilds %d dead-lettered %d skipped"
              v.failures v.rebuilds v.dead_letters v.skipped))
    (view_names t);
  Format.fprintf ppf "@]"
