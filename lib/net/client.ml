(** The blocking OCaml client for the {!Wire} protocol. One connection
    per value; not domain-safe — give each domain its own connection
    (the load harness in [bin/ivm_cli.ml] does exactly that). Every
    call is result-typed over {!Wire.error}; a server-side [Err] frame
    surfaces as [Error (Remote _)]. *)

module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update

let ( let* ) = Result.bind

(* A peer that dies mid-request (crash, kill, failover) must surface as
   [Error (Io "EPIPE")] on the next write, not as a process-killing
   SIGPIPE. Module init is good enough: anything that can write to a
   socket links this module. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  mutable peer_version : int option;  (** cached [Version] probe result *)
}

(* [SO_RCVTIMEO]/[SO_SNDTIMEO] bound every blocking socket call,
   including [connect] itself on Linux — the expired deadline surfaces
   from {!Wire} as [Error Timeout] instead of hanging on a dead peer.
   [None]/[0.] means block forever (the pre-deadline behaviour). *)
let apply_timeout fd = function
  | None -> ()
  | Some d ->
      let d = if d <= 0. then 0. else d in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO d;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO d

let connect ?(host = "127.0.0.1") ?timeout ~port () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Wire.Io (Unix.error_message e))
  | fd -> (
      try
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        apply_timeout fd timeout;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        Ok { fd; closed = false; peer_version = None }
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (match e with
        | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINPROGRESS | Unix.ETIMEDOUT ->
            Error Wire.Timeout
        | _ -> Error (Wire.Io (Unix.error_message e))))

let set_timeout t d =
  if not t.closed then
    try apply_timeout t.fd (Some (Option.value d ~default:0.))
    with Unix.Unix_error _ -> ()

(* Which failures are safe to retry on a fresh connection? [Timeout]
   and [Closed]/[Eof]/[Io] mean the op may never have reached the
   server; [Remote] means it did and was rejected — retrying would just
   repeat the rejection (or worse, re-run a non-idempotent op). *)
let retryable = function
  | Wire.Timeout | Wire.Closed | Wire.Eof | Wire.Truncated | Wire.Io _ -> true
  | Wire.Too_large _ | Wire.Crc_mismatch _ | Wire.Bad_op _ | Wire.Decode _
  | Wire.Remote _ ->
      false

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t req =
  if t.closed then Error Wire.Closed
  else Wire.write_frame t.fd (Wire.encode_request req)

let recv t =
  if t.closed then Error Wire.Closed
  else
    let* body = Wire.read_frame t.fd in
    Wire.decode_response body

let unexpected resp =
  Error (Wire.Decode ("unexpected response " ^ Wire.response_name resp))

let rpc t req =
  let* () = send t req in
  recv t

(* Drain [Chunk] frames until the [last] one; the first frame may be an
   [Err] when the view is unknown. *)
let read_entries t =
  let rec go acc =
    let* resp = recv t in
    match resp with
    | Wire.Chunk { last; entries } ->
        let acc = List.rev_append entries acc in
        if last then Ok (List.rev acc) else go acc
    | Wire.Err msg -> Error (Wire.Remote msg)
    | resp -> unexpected resp
  in
  go []

let ping t =
  let* resp = rpc t Wire.Ping in
  match resp with
  | Wire.Pong -> Ok ()
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let lookup t ~view ~prefix =
  let* () = send t (Wire.Lookup { view; prefix }) in
  read_entries t

let snapshot t ~view =
  let* () = send t (Wire.Snapshot { view }) in
  read_entries t

let ingest t updates =
  let* resp = rpc t (Wire.Ingest updates) in
  match resp with
  | Wire.Ack { admitted; dropped } -> Ok (admitted, dropped)
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let subscribe t =
  let* resp = rpc t Wire.Subscribe in
  match resp with
  | Wire.Subscribed -> Ok ()
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let next_delta t =
  let* resp = recv t in
  match resp with
  | Wire.Delta { epoch; updates } -> Ok (epoch, updates)
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let stats t =
  let* resp = rpc t Wire.Stats in
  match resp with
  | Wire.Text s -> Ok s
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let health t =
  let* resp = rpc t Wire.Health in
  match resp with
  | Wire.Health_list hs -> Ok hs
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let fingerprints t =
  let* resp = rpc t Wire.Fingerprints in
  match resp with
  | Wire.Fingerprint_list fps -> Ok fps
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let heal t =
  let* resp = rpc t Wire.Heal in
  match resp with
  | Wire.Healed names -> Ok names
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let checkpoint t =
  let* resp = rpc t Wire.Checkpoint in
  match resp with
  | Wire.Checkpointed { wal_offset } -> Ok wal_offset
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let shutdown t =
  let* resp = rpc t Wire.Shutdown in
  match resp with
  | Wire.Bye -> Ok ()
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let barrier t =
  let* resp = rpc t Wire.Barrier in
  match resp with
  | Wire.Barrier_done { epoch } -> Ok epoch
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

(* A v1 server answers [Version] with an unknown-opcode [Err] frame —
   report that peer as version 1 rather than an error, and cache the
   answer so the probe costs one round trip per connection. *)
let version t =
  match t.peer_version with
  | Some v -> Ok v
  | None ->
      let* resp = rpc t Wire.Version in
      let* v =
        match resp with
        | Wire.Version_info { version } -> Ok version
        | Wire.Err _ -> Ok 1
        | resp -> unexpected resp
      in
      t.peer_version <- Some v;
      Ok v

(* The v2 text ops share one shape: probe the peer first so talking to
   an old server yields a clean, explanatory [Remote] error instead of
   its raw unknown-opcode message. *)
let sql_text_op t ~opname req =
  let* v = version t in
  if v < 2 then
    Error
      (Wire.Remote
         (Printf.sprintf "server speaks protocol v%d, %s needs v2" v opname))
  else
    let* resp = rpc t req in
    match resp with
    | Wire.Text s -> Ok s
    | Wire.Err msg -> Error (Wire.Remote msg)
    | resp -> unexpected resp

let create_view t sql = sql_text_op t ~opname:"create_view" (Wire.Create_view sql)
let explain t sql = sql_text_op t ~opname:"explain" (Wire.Explain sql)

(* The v4 epoch-token ops, with the same clean degradation against old
   servers as the SQL text ops. *)
let v4_op t ~opname =
  let* v = version t in
  if v < 4 then
    Error
      (Wire.Remote
         (Printf.sprintf "server speaks protocol v%d, %s needs v4" v opname))
  else Ok ()

let ingest_rw t updates =
  let* () = v4_op t ~opname:"ingest_rw" in
  let* resp = rpc t (Wire.Ingest_rw updates) in
  match resp with
  | Wire.Ack_token { admitted; dropped; token } -> Ok (admitted, dropped, token)
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

let lookup_at ?(timeout_ms = 5_000) t ~view ~prefix ~token =
  let* () = v4_op t ~opname:"lookup_at" in
  let* () = send t (Wire.Lookup_at { view; prefix; token; timeout_ms }) in
  let* resp = recv t in
  match resp with
  | Wire.Token { watermark } ->
      let* entries = read_entries t in
      Ok (watermark, entries)
  | Wire.Err msg -> Error (Wire.Remote msg)
  | resp -> unexpected resp

(* Read-your-writes sessions: the token of the last acknowledged write
   rides every read, and the server's reported watermark is re-checked
   client-side — a server that served a stale snapshot (failpoint, bug,
   failover to a lagging replica) is caught here, not trusted. *)
module Session = struct
  type client = t
  type t = { client : client; mutable token : int }

  let create client = { client; token = 0 }
  let client s = s.client
  let token s = s.token
  let reattach s client = { client; token = s.token }

  let write s updates =
    let* admitted, dropped, token = ingest_rw s.client updates in
    if token > s.token then s.token <- token;
    Ok (admitted, dropped)

  let read ?timeout_ms s ~view ~prefix =
    let* watermark, entries =
      lookup_at ?timeout_ms s.client ~view ~prefix ~token:s.token
    in
    if watermark < s.token then
      Error
        (Wire.Remote
           (Printf.sprintf
              "read-your-writes violated: served watermark %d behind session token %d"
              watermark s.token))
    else Ok entries
end
