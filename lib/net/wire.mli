(** The binary wire protocol of the view server: length-prefixed,
    CRC-framed request/response messages layered on {!Ivm_data.Codec}.

    A frame is [u32 len | u32 crc | body] (little-endian); [crc] is the
    CRC-32 of the body, [len] its byte length, capped at {!max_body}.
    All decoding is result-typed over {!error} — corrupt, truncated or
    oversized input yields a value, never an exception or a hang. *)

module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update

val header_len : int
(** Frame header bytes (length + checksum). *)

val max_body : int
(** Hard cap on a frame body (16 MiB): a reader never trusts the peer
    for its allocation size. *)

val protocol_version : int
(** Version 4: v2 added [Version], [Create_view] and [Explain] to the
    v1 opcode set; v3 added [Barrier], the cluster router's epoch
    fence; v4 adds the epoch-token session pair [Ingest_rw]/[Lookup_at]
    for read-your-writes. An old server answers the new opcodes with a
    clean [Err] frame (unknown opcode at the message layer), so clients
    probe with [Version] and degrade gracefully. *)

type error =
  | Eof  (** peer closed cleanly at a frame boundary *)
  | Truncated  (** stream ended mid-frame *)
  | Too_large of int  (** advertised body length over {!max_body} *)
  | Crc_mismatch of { expected : int; actual : int }
  | Bad_op of int  (** unknown opcode byte *)
  | Decode of string  (** malformed message body *)
  | Io of string  (** socket-level failure *)
  | Timeout
      (** the [SO_RCVTIMEO]/[SO_SNDTIMEO] deadline expired — the peer
          may be dead or just slow; retryable for idempotent ops *)
  | Closed  (** this endpoint was already closed locally *)
  | Remote of string  (** the server answered with an error message *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Framing} *)

val frame : string -> string
(** Wrap a body into a complete frame.
    @raise Invalid_argument over {!max_body}. *)

val frame_bytes : string -> Bytes.t
(** A complete frame (header, CRC, body) preserialized into one buffer
    — the zero-copy currency of the server's snapshot cache: build once
    at cache-fill time, serve with {!write_prebuilt}. Treat the result
    as immutable.
    @raise Invalid_argument over {!max_body}. *)

val decode_frame : string -> pos:int -> (string * int, error) result
(** Parse one frame starting at [pos] of a byte buffer, returning the
    body and the position after the frame. [Error Eof] when [pos] is
    exactly the end of the buffer; [Error Truncated] when the buffer
    ends mid-frame. Pure — the property-testing seam under
    {!read_frame}. *)

val write_frame : Unix.file_descr -> string -> (unit, error) result
(** Frame a body and write it fully, looping over partial writes. A
    socket send timeout ([SO_SNDTIMEO]) surfaces as [Error Timeout]. *)

val write_prebuilt : Unix.file_descr -> Bytes.t -> (unit, error) result
(** Write a {!frame_bytes}-prebuilt frame fully, looping over partial
    writes — no staging buffer, no re-encoding, no re-CRC. *)

val read_frame : Unix.file_descr -> (string, error) result
(** Read exactly one frame, looping over partial reads, and verify its
    checksum. After a [Crc_mismatch] the stream is still aligned on a
    frame boundary — the connection can keep serving. *)

(** {1 Messages} *)

type request =
  | Ping
  | Lookup of { view : string; prefix : Tuple.t }
      (** CQAP point access: bind the first [arity prefix] output
          columns and enumerate the matching entries. *)
  | Snapshot of { view : string }  (** full output enumeration *)
  | Ingest of int Update.t list  (** feed the server's update queue *)
  | Subscribe  (** push one {!Delta} per applied epoch from now on *)
  | Stats  (** Prometheus text exposition of the server metrics *)
  | Health
  | Fingerprints
  | Heal
  | Checkpoint
  | Shutdown
  | Version  (** negotiate: the server answers {!Version_info} *)
  | Create_view of string
      (** SQL [CREATE TABLE ...; CREATE MATERIALIZED VIEW ... AS
          SELECT ...] text, executed against the server's registry *)
  | Explain of string
      (** SQL [EXPLAIN ...] text; answers [Text] with the engine choice
          and the classification facts *)
  | Barrier
      (** fence: answer {!Barrier_done} only once every update admitted
          before this request has been applied and made durable *)
  | Ingest_rw of int Update.t list
      (** like [Ingest], but acknowledged with an {!Ack_token} carrying
          the epoch token a session threads into {!Lookup_at} *)
  | Lookup_at of { view : string; prefix : Tuple.t; token : int; timeout_ms : int }
      (** a read gated on the server's served watermark reaching
          [token] (waiting up to [timeout_ms]); answered with a
          {!Token} frame then entry chunks — the read-your-writes
          primitive *)

type response =
  | Pong
  | Chunk of { last : bool; entries : (Tuple.t * int) list }
      (** one slice of a [Lookup]/[Snapshot] enumeration *)
  | Ack of { admitted : int; dropped : int }
  | Text of string
  | Health_list of (string * string * string option) list
      (** (view, health, last error) *)
  | Fingerprint_list of (string * int) list
  | Healed of string list  (** names still unhealthy after healing *)
  | Checkpointed of { wal_offset : int }
  | Delta of { epoch : int; updates : int Update.t list }
  | Err of string
  | Bye
  | Subscribed
  | Version_info of { version : int }
  | Barrier_done of { epoch : int }
      (** the scheduler epoch at which the fence held *)
  | Ack_token of { admitted : int; dropped : int; token : int }
      (** [token] is the ingest-queue watermark after this batch was
          admitted: once the served watermark reaches it, every update
          of the batch is visible to reads *)
  | Token of { watermark : int }
      (** prefix of a gated read's chunk stream: the served watermark
          the entries that follow were materialized at *)

val request_name : request -> string
(** Stable lowercase tag, the per-op latency label in {!Ivm_stream.Metrics}. *)

val response_name : response -> string

val encode_request : request -> string
val decode_request : string -> (request, error) result
val encode_response : response -> string
val decode_response : string -> (response, error) result
