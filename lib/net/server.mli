(** The TCP view server: an accept loop plus per-connection handlers on
    a dedicated domain pool, serving the {!Wire} protocol against a
    {!Ivm_stream.Registry}.

    Lookups and snapshots serve the latest completed materialization of
    the view: a per-view snapshot cache keyed by the registry's
    generation counter, refreshed stale-while-revalidate (one request
    pays the re-enumeration under {!Ivm_stream.Registry.read}, the
    shared side of the registry's writer-preferring lock; concurrent
    ones serve the previous epoch's snapshot). Every answer is an
    epoch-consistent snapshot — taken at an epoch boundary, never a
    half-applied batch — and point lookups with a bound first variable
    answer from a hash index on that field in O(answer). Bytes go out
    after the lock is released. Ingested updates flow through the [ingest] callback into
    the scheduler's bounded queue — the queue policy is the server's
    backpressure. Delta subscribers are pushed one frame per applied
    epoch via {!publish_delta}; a subscriber that stays unwritable past
    the socket send timeout is disconnected (a half-written frame
    cannot be resynchronized, and a slow consumer must not stall the
    maintenance loop). *)

type t

val start :
  ?host:string ->
  port:int ->
  ?chunk_size:int ->
  ?snd_timeout:float ->
  ?handlers:int ->
  ?ingest:(int Ivm_data.Update.t list -> int * int) ->
  ?ingest_rw:(int Ivm_data.Update.t list -> int * int * int) ->
  ?served:(unit -> int) ->
  ?checkpoint:(unit -> (int, string) result) ->
  ?create_view:(string -> (string, string) result) ->
  ?explain:(string -> (string, string) result) ->
  ?barrier:(unit -> (int, string) result) ->
  ?on_shutdown:(unit -> unit) ->
  registry:Ivm_stream.Registry.t ->
  metrics:Ivm_stream.Metrics.t ->
  unit ->
  (t, Wire.error) result
(** Bind [host] (default loopback) on [port] — [port = 0] picks an
    ephemeral port, read back with {!port} — and start serving on
    [handlers] (default 4) worker domains; at most that many
    connections are served concurrently, further ones queue.
    [chunk_size] (default 512) bounds entries per enumeration frame;
    [snd_timeout] (default 5 s, [0.] disables) is the slow-subscriber
    bound. [ingest] admits a batch into the update queue and reports
    [(admitted, dropped)] — without it the server is read-only.
    [ingest_rw] additionally returns the queue watermark after the
    batch was admitted — the epoch token answered to [Ingest_rw] that a
    read-your-writes session threads into [Lookup_at]; [served] reports
    the scheduler's served watermark (items applied), which gates
    [Lookup_at] and stamps every snapshot. Wire them to
    {!Ivm_stream.Queue.pushed} after the push and
    {!Ivm_stream.Scheduler.applied} respectively; without them the
    token ops answer [Err]. An armed ["net.stale_read"] failpoint makes
    [Lookup_at] skip its gate while still reporting the honest
    watermark — the injection seam for read-your-writes violation
    tests.
    [checkpoint] runs the admin checkpoint and returns the WAL offset
    it is current through. [create_view] executes a [Create_view] SQL
    script against the server's SQL session and returns the
    acknowledgement text; [explain] answers [Explain] with the planner
    report — without them the corresponding ops answer [Err].
    [barrier] answers the [Barrier] op: it must return only once every
    update admitted before the call has been applied, yielding the
    epoch at which the fence held — wire it to
    {!Ivm_stream.Scheduler.barrier}. [on_shutdown] runs once when a
    [Shutdown] request is accepted — typically closing the update queue
    so the scheduler drains and the driver can call {!stop}.

    The accept loop survives transient failures: [ECONNABORTED]
    continues immediately, fd exhaustion ([EMFILE]/[ENFILE]) backs off
    and continues; only a closed listener exits it. *)

val port : t -> int
(** The actually-bound port. *)

val connections : t -> int
val subscriber_count : t -> int
val stopping : t -> bool

val snapshot_frames : t -> string -> (Bytes.t list, string) result
(** The preserialized chunk frames a cache-hit [Snapshot] answer
    writes, refreshing the cache exactly as a request would. While the
    registry generation is unchanged, repeated calls return the {e
    physically} same buffers — the zero-copy property; exposed so tests
    can assert it. *)

val lookup_frames : t -> string -> Ivm_data.Value.t -> (Bytes.t list, string) result
(** Same, for a [Lookup] with bound first field [key]; a key with no
    group returns the server-lifetime shared empty terminator frame. *)

val publish_delta : t -> epoch:int -> (string * int Ivm_data.Update.t list) list -> unit
(** Push one [Delta] frame (the front flattened into the wire's flat
    update list) to every subscriber — wire this to
    {!Ivm_stream.Scheduler}'s [on_apply], which hands exactly this
    per-relation delta front. Runs on the caller's domain; cost is one
    bounded socket write per subscriber. *)

val stop : ?grace:float -> t -> unit
(** Stop accepting, drain, and join the pool. Requests already being
    handled get up to [grace] seconds (default 1 s; [0.] for an abrupt
    stop) to write their responses before connections are shut — a
    shutdown must not cut off answers in flight. Must not be called
    from a handler (a [Shutdown] request instead flags the server and
    runs [on_shutdown]; the driver then calls [stop]). *)
