(** The TCP view server: one accept loop plus per-connection handlers
    scheduled over a dedicated {!Ivm_par.Domain_pool} — its own pool,
    never the registry's, because {!Ivm_stream.Registry.apply_batch}
    runs a barrier on the registry pool and a long-lived connection
    handler must never ride a barrier.

    Reads ([Lookup], [Snapshot]) are served from a per-view snapshot
    cache keyed by the registry's generation counter: the snapshot is
    materialized under {!Ivm_stream.Registry.read} — the shared side of
    the registry's writer-preferring lock — so it is exactly one epoch
    boundary's state, never a half-applied batch, and point lookups
    answer from a hash index on the view's first output field. Under a
    live producer the semantics are latest-completed-epoch with
    stale-while-revalidate: one request per view pays the refresh,
    concurrent ones serve the previous epoch. [Health] and
    [Fingerprints] still read the registry directly under the shared
    lock. Writes go through the [ingest] callback
    into the scheduler's bounded queue, whose policy (block / drop) is
    the server's backpressure. Delta subscribers are fed from the
    scheduler's [on_apply] hook via {!publish_delta}; a subscriber that
    cannot keep up past the socket send timeout is disconnected — a
    half-written frame cannot be resynchronized, and a slow consumer
    must not stall the maintenance loop. *)

module Registry = Ivm_stream.Registry
module Metrics = Ivm_stream.Metrics
module M = Ivm_engine.Maintainable
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Update = Ivm_data.Update
module Domain_pool = Ivm_par.Domain_pool
module Failpoint = Ivm_fault.Failpoint

(* Same rationale as {!Client}: a subscriber or requester that vanishes
   mid-write must cost us an [EPIPE], not the process. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

type conn = { fd : Unix.file_descr; write_mutex : Mutex.t }

(* One materialized view enumeration: the full entry list for snapshot
   requests, plus the same entries grouped by first output field — the
   access-pattern index that makes a bound-variable lookup O(answer)
   instead of a scan of the whole output.

   Both access paths are also preserialized at cache-fill time:
   [frames] is the full enumeration already sliced into complete
   length-prefixed, CRC-stamped chunk frames, and [key_frames] the same
   per first-field group. Serving a cache hit is then a single write of
   prebuilt bytes per chunk — zero per-request encoding or checksums.
   Only multi-field prefix lookups (rare: they need filtering) still
   encode per request. *)
type snapshot = {
  gen : int;
  watermark : int;
      (* the served watermark (queue items applied) this snapshot was
         materialized at — what a [Lookup_at] compares its token to *)
  entries : (Tuple.t * int) list;
  by_key : (Value.t, (Tuple.t * int) list) Hashtbl.t;
  frames : Bytes.t list;
  key_frames : (Value.t, Bytes.t list) Hashtbl.t;
}

(* Slice an enumeration into prebuilt [Chunk] frames; the empty answer
   is still one (empty, last) chunk so the client always sees a
   terminator. *)
let build_frames ~chunk_size entries =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | e :: rest -> take (k - 1) (e :: acc) rest
  in
  let rec go acc entries =
    let chunk, rest = take chunk_size [] entries in
    let last = rest = [] in
    let f = Wire.frame_bytes (Wire.encode_response (Wire.Chunk { last; entries = chunk })) in
    if last then List.rev (f :: acc) else go (f :: acc) rest
  in
  go [] entries

(* The shared terminator served to every lookup that finds no group —
   one buffer for the whole server's lifetime. *)
let empty_answer : Bytes.t list =
  [ Wire.frame_bytes (Wire.encode_response (Wire.Chunk { last = true; entries = [] })) ]

let make_snapshot ~gen ~watermark ~chunk_size entries =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun ((tp, _) as e) ->
      if Tuple.arity tp > 0 then begin
        let k = Tuple.get tp 0 in
        let group = Option.value (Hashtbl.find_opt by_key k) ~default:[] in
        Hashtbl.replace by_key k (e :: group)
      end)
    entries;
  let key_frames = Hashtbl.create (Hashtbl.length by_key) in
  Hashtbl.iter
    (fun k group -> Hashtbl.replace key_frames k (build_frames ~chunk_size group))
    by_key;
  { gen; watermark; entries; by_key; frames = build_frames ~chunk_size entries; key_frames }

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  registry : Registry.t;
  metrics : Metrics.t;
  chunk_size : int;
  snd_timeout : float;
  ingest : (int Update.t list -> int * int) option;
  ingest_rw : (int Update.t list -> int * int * int) option;
      (* like [ingest], plus the queue watermark after admission — the
         epoch token handed back to read-your-writes sessions *)
  served : (unit -> int) option;
      (* the scheduler's served watermark (items applied); [Lookup_at]
         gates on it and snapshots are stamped with it *)
  checkpoint : (unit -> (int, string) result) option;
  create_view : (string -> (string, string) result) option;
  explain : (string -> (string, string) result) option;
  barrier : (unit -> (int, string) result) option;
  on_shutdown : (unit -> unit) option;
  pool : Domain_pool.t;
  (* Snapshot cache: view name -> materialized enumeration stamped with
     the registry generation it was taken at (exact: the enumeration
     runs under the shared lock) and indexed by first output field for
     point lookups. A generation bump (any registry mutation) marks it
     stale. Reads are stale-while-revalidate: at most one request per
     view pays the re-materialization (tracked in [refreshing]);
     concurrent reads serve the previous epoch's snapshot instead of
     piling up behind a full enumeration per request. *)
  cache_mutex : Mutex.t;
  cache : (string, snapshot) Hashtbl.t;
  refreshing : (string, unit) Hashtbl.t;
  mutex : Mutex.t; (* guards conns, subscribers, stopping, active *)
  mutable conns : conn list;
  mutable subscribers : conn list;
  mutable stopping : bool;
  mutable active : int;
      (* requests currently inside [handle] — the drain count [stop]
         waits on before slamming connections shut *)
  mutable accept_domain : unit Domain.t option;
  (* Idle parking: a connection waiting for its next request sits here,
     watched by the poller domain, and costs no handler. Without this a
     handful of idle pooled connections (plus a delta subscriber, which
     never speaks again) would pin every handler domain and starve new
     requests — the fixed-size pool would be trivially DoS-able. *)
  park_mutex : Mutex.t;
  mutable parked : conn list;
  wake_r : Unix.file_descr; (* self-pipe: park/stop wake the poller's select *)
  wake_w : Unix.file_descr;
  mutable poller_domain : unit Domain.t option;
}

let port t = t.port
let connections t = Mutex.protect t.mutex (fun () -> List.length t.conns)
let subscriber_count t = Mutex.protect t.mutex (fun () -> List.length t.subscribers)
let stopping t = Mutex.protect t.mutex (fun () -> t.stopping)

(* Every socket write on a connection holds its write mutex: request
   responses (handler domain) and pushed deltas (scheduler domain)
   interleave only at frame boundaries. *)
let send conn resp =
  Mutex.protect conn.write_mutex (fun () ->
      Wire.write_frame conn.fd (Wire.encode_response resp))

(* The zero-copy send: the whole answer's prebuilt frames go out under
   one hold of the write mutex (frames of one answer must not
   interleave with pushed deltas), each as a single write loop. *)
let send_frames conn frames =
  Mutex.protect conn.write_mutex (fun () ->
      List.fold_left
        (fun acc f -> Result.bind acc (fun () -> Wire.write_prebuilt conn.fd f))
        (Ok ()) frames)

let drop_conn t conn =
  Mutex.protect t.mutex (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns;
      t.subscribers <- List.filter (fun c -> c != conn) t.subscribers);
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- request handling ------------------------------------------------- *)

let matches_prefix prefix tp =
  let k = Tuple.arity prefix in
  Tuple.arity tp >= k
  &&
  let rec go i = i >= k || (Value.equal (Tuple.get tp i) (Tuple.get prefix i) && go (i + 1)) in
  go 0

(* The slow path for answers that must be assembled per request
   (multi-field prefix filters): encode and frame each chunk now. *)
let send_chunks t conn entries = send_frames conn (build_frames ~chunk_size:t.chunk_size entries)

let snapshot t view =
  (* Lock-free hit check: [generation] is read racily, but it is a
     monotonic counter bumped under the exclusive lock, so any observed
     value at worst declares a still-warm snapshot stale or serves one
     that a concurrent epoch is just now superseding — both fine under
     latest-completed-epoch semantics. The point is that cache hits and
     stale serves never touch the registry lock: under a continuous
     producer the writer-preferring lock would otherwise queue every
     read behind a full epoch apply. *)
  let gen = Registry.generation t.registry in
  let fresh, stale, owner =
    Mutex.protect t.cache_mutex (fun () ->
        match Hashtbl.find_opt t.cache view with
        | Some snap when snap.gen = gen -> (Some snap, None, false)
        | stale ->
            if Hashtbl.mem t.refreshing view then (None, stale, false)
            else (
              Hashtbl.replace t.refreshing view ();
              (None, stale, true)))
  in
  match (fresh, stale, owner) with
  | Some snap, _, _ -> Ok snap
  | None, Some snap, false -> Ok snap
  | None, _, _ ->
      (* Owner of the refresh, or first-ever enumeration racing one
         (nothing stale to serve): materialize under the shared lock,
         where the re-read generation is exact for the enumeration. *)
      Fun.protect
        ~finally:(fun () ->
          if owner then
            Mutex.protect t.cache_mutex (fun () ->
                Hashtbl.remove t.refreshing view))
        (fun () ->
          Registry.read t.registry (fun () ->
              match Registry.find t.registry view with
              | exception Invalid_argument msg -> Error msg
              | m ->
                  let gen = Registry.generation t.registry in
                  (* Read the watermark before enumerating, inside the
                     shared lock: [apply_front] needs the exclusive
                     side, so no batch lands mid-enumeration and the
                     stamp is conservative (never claims visibility the
                     entries do not have). *)
                  let watermark =
                    match t.served with Some f -> f () | None -> 0
                  in
                  let snap =
                    make_snapshot ~gen ~watermark ~chunk_size:t.chunk_size
                      (m.M.enumerate ())
                  in
                  Mutex.protect t.cache_mutex (fun () ->
                      Hashtbl.replace t.cache view snap);
                  Ok snap))

(* Test seam for the zero-copy property: the exact prebuilt buffers a
   cache-hit answer writes. Physical identity of these across requests
   at an unchanged generation is what "zero per-request encoding"
   means, and what [test_net] asserts. *)
let snapshot_frames t view = Result.map (fun snap -> snap.frames) (snapshot t view)

let lookup_frames t view key =
  Result.map
    (fun snap -> Option.value (Hashtbl.find_opt snap.key_frames key) ~default:empty_answer)
    (snapshot t view)

type outcome = Continue | Close | Shutdown_server

(* --- idle parking ------------------------------------------------------ *)

let wake_poller t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let park t conn =
  Mutex.protect t.park_mutex (fun () -> t.parked <- conn :: t.parked);
  wake_poller t

(* Zero-timeout readability probe: deciding whether to keep serving a
   connection inline (burst in progress) or hand it back to the poller.
   On any select error, claim readable — the next read surfaces the
   real failure and drops the connection. *)
let readable_now fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error _ -> true

(* Handle one decoded request. Answers that need registry state are
   materialized under the shared lock and sent after it is released
   ([send_chunks] runs outside [Registry.read]). *)
(* One snapshot answer for a given prefix: the shared tail of [Lookup]
   and [Lookup_at]. *)
let answer_prefix t conn snap prefix =
  if Tuple.arity prefix = 0 then send_frames conn snap.frames
  else if Tuple.arity prefix = 1 then
    (* Bound first variable: the whole answer is already framed per
       key — serve the prebuilt bytes (or the shared empty
       terminator). *)
    send_frames conn
      (Option.value
         (Hashtbl.find_opt snap.key_frames (Tuple.get prefix 0))
         ~default:empty_answer)
  else
    (* Longer prefixes need filtering — the one per-request encoding
       path left. *)
    let group =
      Option.value (Hashtbl.find_opt snap.by_key (Tuple.get prefix 0)) ~default:[]
    in
    send_chunks t conn (List.filter (fun (tp, _) -> matches_prefix prefix tp) group)

(* The failpoint of the read-your-writes e2e test: an armed
   ["net.stale_read"] makes [Lookup_at] skip its watermark gate and
   serve whatever snapshot is current — the watermark it reports stays
   honest, which is exactly how the client-side session catches the
   violation. *)
let stale_read_fp = "net.stale_read"

let handle t conn (req : Wire.request) : outcome =
  let respond resp = match send conn resp with Ok () -> Continue | Error _ -> Close in
  match req with
  | Wire.Ping -> respond Wire.Pong
  | Wire.Lookup { view; prefix } -> (
      match snapshot t view with
      | Error msg -> respond (Wire.Err msg)
      | Ok snap ->
          (match answer_prefix t conn snap prefix with
          | Ok () -> Continue
          | Error _ -> Close))
  | Wire.Snapshot { view } -> (
      match snapshot t view with
      | Error msg -> respond (Wire.Err msg)
      | Ok snap -> (
          match send_frames conn snap.frames with
          | Ok () -> Continue
          | Error _ -> Close))
  | Wire.Ingest updates -> (
      if stopping t then respond (Wire.Err "server is shutting down")
      else
        match t.ingest with
        | None -> respond (Wire.Err "server is read-only")
        | Some ingest ->
            let admitted, dropped = ingest updates in
            respond (Wire.Ack { admitted; dropped }))
  | Wire.Ingest_rw updates -> (
      if stopping t then respond (Wire.Err "server is shutting down")
      else
        match t.ingest_rw with
        | None -> respond (Wire.Err "server has no epoch-token ingest")
        | Some ingest ->
            let admitted, dropped, token = ingest updates in
            respond (Wire.Ack_token { admitted; dropped; token }))
  | Wire.Lookup_at { view; prefix; token; timeout_ms } -> (
      let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
      let serve snap =
        match send conn (Wire.Token { watermark = snap.watermark }) with
        | Error _ -> Close
        | Ok () -> (
            match answer_prefix t conn snap prefix with
            | Ok () -> Continue
            | Error _ -> Close)
      in
      let ungated () =
        match snapshot t view with
        | Error msg -> respond (Wire.Err msg)
        | Ok snap -> serve snap
      in
      if token <= 0 || Failpoint.hit stale_read_fp <> None then ungated ()
      else
        match t.served with
        | None -> respond (Wire.Err "server has no served-epoch source")
        | Some served ->
            (* Two-stage gate. First wait for the scheduler to apply
               past the token; then re-materialize until the snapshot
               itself carries that watermark — a stale-while-revalidate
               cache may briefly keep serving the previous epoch. *)
            let rec wait () =
              if served () >= token then Ok ()
              else if Unix.gettimeofday () >= deadline then Error ()
              else begin
                Unix.sleepf 0.001;
                wait ()
              end
            in
            let rec fetch () =
              match snapshot t view with
              | Error msg -> respond (Wire.Err msg)
              | Ok snap when snap.watermark >= token -> serve snap
              | Ok _ ->
                  if Unix.gettimeofday () >= deadline then
                    respond (Wire.Err "read-your-writes deadline: snapshot behind token")
                  else begin
                    Unix.sleepf 0.001;
                    fetch ()
                  end
            in
            (match wait () with
            | Error () ->
                respond
                  (Wire.Err "read-your-writes deadline: served watermark behind token")
            | Ok () -> fetch ()))
  | Wire.Subscribe -> (
      match send conn Wire.Subscribed with
      | Error _ -> Close
      | Ok () ->
          (* Registered only after the ack, so the first frame a
             subscriber reads is always [Subscribed]. *)
          Mutex.protect t.mutex (fun () ->
              if not (List.memq conn t.subscribers) then
                t.subscribers <- conn :: t.subscribers);
          Continue)
  | Wire.Stats -> respond (Wire.Text (Metrics.render t.metrics))
  | Wire.Health ->
      let hs =
        Registry.read t.registry (fun () ->
            List.map
              (fun (name, h) ->
                (name, Registry.health_name h, Registry.last_error t.registry name))
              (Registry.statuses t.registry))
      in
      respond (Wire.Health_list hs)
  | Wire.Fingerprints ->
      let fps = Registry.read t.registry (fun () -> Registry.fingerprints t.registry) in
      respond (Wire.Fingerprint_list fps)
  | Wire.Heal -> respond (Wire.Healed (Registry.heal t.registry))
  | Wire.Checkpoint -> (
      match t.checkpoint with
      | None -> respond (Wire.Err "server has no checkpoint store")
      | Some ck -> (
          match ck () with
          | Ok wal_offset -> respond (Wire.Checkpointed { wal_offset })
          | Error msg -> respond (Wire.Err msg)))
  | Wire.Version -> respond (Wire.Version_info { version = Wire.protocol_version })
  | Wire.Barrier -> (
      match t.barrier with
      | None -> respond (Wire.Err "server has no scheduler to fence")
      | Some fence -> (
          match fence () with
          | Ok epoch -> respond (Wire.Barrier_done { epoch })
          | Error msg -> respond (Wire.Err msg)))
  | Wire.Create_view sql -> (
      if stopping t then respond (Wire.Err "server is shutting down")
      else
        match t.create_view with
        | None -> respond (Wire.Err "server has no SQL session")
        | Some f -> (
            match f sql with
            | Ok msg -> respond (Wire.Text msg)
            | Error msg -> respond (Wire.Err msg)))
  | Wire.Explain sql -> (
      match t.explain with
      | None -> respond (Wire.Err "server has no SQL session")
      | Some f -> (
          match f sql with
          | Ok report -> respond (Wire.Text report)
          | Error msg -> respond (Wire.Err msg)))
  | Wire.Shutdown ->
      (* Ack first: the client's [shutdown] call deserves its [Bye] even
         though the server starts tearing down immediately after. *)
      (match send conn Wire.Bye with Ok () | Error _ -> ());
      Shutdown_server

(* Wake the accept loop by connecting to ourselves: closing a listening
   socket does not reliably interrupt an [accept] blocked on another
   domain, a loopback connection always does. *)
let wake_accept t =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let initiate_shutdown t =
  let first = Mutex.protect t.mutex (fun () ->
      let first = not t.stopping in
      t.stopping <- true;
      first)
  in
  if first then begin
    wake_accept t;
    match t.on_shutdown with Some f -> f () | None -> ()
  end

(* --- connection handler ----------------------------------------------- *)

(* Serve requests off one connection while bytes are already waiting,
   then hand it back to the poller. A handler domain is occupied only
   for requests in flight, never for a connection that is merely open —
   [continue] is the seam that makes the fixed-size pool immune to idle
   connections. *)
let rec serve_conn t conn =
  let continue () = if readable_now conn.fd then serve_conn t conn else park t conn in
  match Wire.read_frame conn.fd with
  | Error (Wire.Eof | Wire.Truncated | Wire.Io _ | Wire.Timeout | Wire.Closed) ->
      drop_conn t conn
  | Error (Wire.Too_large _ as e) ->
      (* The oversized body was never read, so the stream has lost its
         frame alignment — tell the client why and hang up. *)
      (match send conn (Wire.Err (Wire.error_to_string e)) with Ok () | Error _ -> ());
      drop_conn t conn
  | Error e ->
      (* Checksum or opcode/body trouble inside one complete frame: the
         boundary is intact, answer with the error and keep serving. *)
      (match send conn (Wire.Err (Wire.error_to_string e)) with
      | Ok () -> continue ()
      | Error _ -> drop_conn t conn)
  | Ok body -> (
      match Wire.decode_request body with
      | Error e -> (
          match send conn (Wire.Err (Wire.error_to_string e)) with
          | Ok () -> continue ()
          | Error _ -> drop_conn t conn)
      | Ok req -> (
          let t0 = Unix.gettimeofday () in
          Mutex.protect t.mutex (fun () -> t.active <- t.active + 1);
          let outcome =
            Fun.protect
              ~finally:(fun () ->
                Mutex.protect t.mutex (fun () -> t.active <- t.active - 1))
              (fun () -> handle t conn req)
          in
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.record_op t.metrics (Wire.request_name req) dt;
          (* View-addressed ops also feed the per-tenant (view, op)
             series, so one tenant's tail is visible on its own. *)
          (match req with
          | Wire.Lookup { view; _ }
          | Wire.Snapshot { view }
          | Wire.Lookup_at { view; _ } ->
              Metrics.record_view_op t.metrics ~view ~op:(Wire.request_name req) dt
          | _ -> ());
          match outcome with
          | Continue -> continue ()
          | Close -> drop_conn t conn
          | Shutdown_server ->
              drop_conn t conn;
              initiate_shutdown t))

(* The poller: select over every parked connection plus the self-pipe,
   dispatch the readable ones to the handler pool. The 250 ms select
   timeout bounds shutdown latency even if a wake byte is lost. *)
let rec poll_loop t =
  if stopping t then ()
  else begin
    let parked = Mutex.protect t.park_mutex (fun () -> t.parked) in
    let fds = t.wake_r :: List.map (fun c -> c.fd) parked in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll_loop t
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* A parked fd was closed under us (shutdown race): drop the
           dead ones and carry on watching the rest. *)
        Mutex.protect t.park_mutex (fun () ->
            t.parked <-
              List.filter
                (fun c ->
                  match Unix.fstat c.fd with
                  | (_ : Unix.stats) -> true
                  | exception Unix.Unix_error _ -> false)
                t.parked);
        poll_loop t
    | readable, _, _ ->
        (if List.memq t.wake_r readable then
           let buf = Bytes.create 64 in
           try ignore (Unix.read t.wake_r buf 0 64) with Unix.Unix_error _ -> ());
        let ready =
          Mutex.protect t.park_mutex (fun () ->
              let ready, rest =
                List.partition (fun c -> List.memq c.fd readable) t.parked
              in
              t.parked <- rest;
              ready)
        in
        List.iter
          (fun conn -> Domain_pool.submit t.pool (fun () -> serve_conn t conn))
          ready;
        poll_loop t
  end

(* --- delta fan-out ---------------------------------------------------- *)

let publish_delta t ~epoch front =
  let subs = Mutex.protect t.mutex (fun () -> t.subscribers) in
  if subs <> [] then begin
    (* The wire frame stays a flat update list; the front is flattened
       only here, once per epoch, instead of each producer re-deriving
       shapes from a flat batch. *)
    let updates = List.concat_map snd front in
    let body = Wire.encode_response (Wire.Delta { epoch; updates }) in
    List.iter
      (fun conn ->
        let ok =
          Mutex.protect conn.write_mutex (fun () ->
              match Wire.write_frame conn.fd body with Ok () -> true | Error _ -> false)
        in
        (* Slow-consumer policy: a send that fails or times out leaves a
           half-written frame we cannot resynchronize — disconnect. The
           shutdown wakes the handler's blocked read, which cleans up. *)
        if not ok then begin
          Mutex.protect t.mutex (fun () ->
              t.subscribers <- List.filter (fun c -> c != conn) t.subscribers);
          try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
        end)
      subs
  end

(* --- lifecycle -------------------------------------------------------- *)

(* The accept loop must outlive transient accept failures: a client
   that resets mid-handshake raises [ECONNABORTED] (its connection, not
   our listener), and fd exhaustion ([EMFILE]/[ENFILE]) is the load
   spike's fault, not the socket's — existing handlers will release fds
   as they finish. Both continue; fd pressure backs off first so the
   loop does not spin at 100% CPU re-raising the same error. Only a
   dead listener (shutdown in progress, or [EBADF]/[EINVAL] from a
   closed fd) exits the loop. *)
let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
  | exception
      Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _)
    ->
      if stopping t then ()
      else begin
        Unix.sleepf 0.05;
        accept_loop t
      end
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
      if stopping t then ()
      else begin
        Unix.sleepf 0.01;
        accept_loop t
      end
  | fd, _ ->
      if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        (* The send timeout is the slow-subscriber bound: a peer that
           stops draining its socket for this long gets disconnected
           rather than stalling the delta fan-out. *)
        (if t.snd_timeout > 0. then
           try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.snd_timeout
           with Unix.Unix_error _ -> ());
        let conn = { fd; write_mutex = Mutex.create () } in
        Mutex.protect t.mutex (fun () -> t.conns <- conn :: t.conns);
        (* Straight to the poller: a freshly accepted connection has no
           request yet, so it must not occupy a handler. *)
        park t conn;
        accept_loop t
      end

let start ?(host = "127.0.0.1") ~port ?(chunk_size = 512) ?(snd_timeout = 5.0)
    ?(handlers = 4) ?ingest ?ingest_rw ?served ?checkpoint ?create_view ?explain
    ?barrier ?on_shutdown ~registry ~metrics () =
  if chunk_size < 1 then invalid_arg "Server.start: chunk_size < 1";
  if handlers < 1 then invalid_arg "Server.start: handlers < 1";
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Wire.Io (Unix.error_message e))
  | listen_fd -> (
      try
        Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
        Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        Unix.listen listen_fd 128;
        let port =
          match Unix.getsockname listen_fd with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> port
        in
        let wake_r, wake_w = Unix.pipe ~cloexec:true () in
        let t =
          {
            listen_fd;
            port;
            registry;
            metrics;
            chunk_size;
            snd_timeout;
            ingest;
            ingest_rw;
            served;
            checkpoint;
            create_view;
            explain;
            barrier;
            on_shutdown;
            (* handlers worker domains: the accept loop lives on its own
               domain and only ever submits, never executes. *)
            pool = Domain_pool.create ~domains:(handlers + 1);
            cache_mutex = Mutex.create ();
            cache = Hashtbl.create 8;
            refreshing = Hashtbl.create 8;
            mutex = Mutex.create ();
            conns = [];
            subscribers = [];
            stopping = false;
            active = 0;
            accept_domain = None;
            park_mutex = Mutex.create ();
            parked = [];
            wake_r;
            wake_w;
            poller_domain = None;
          }
        in
        t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
        t.poller_domain <- Some (Domain.spawn (fun () -> poll_loop t));
        Ok t
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Error (Wire.Io (Unix.error_message e)))

let stop ?(grace = 1.0) t =
  Mutex.protect t.mutex (fun () -> t.stopping <- true);
  wake_accept t;
  (match t.accept_domain with
  | Some d ->
      Domain.join d;
      t.accept_domain <- None
  | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Drain: requests already inside [handle] get up to [grace] seconds
     to finish and write their responses before connections are slammed
     shut — a Shutdown must not cut off the answers in flight. New
     requests are already refused ([stopping] is set). *)
  let deadline = Unix.gettimeofday () +. grace in
  let rec drain () =
    if
      Mutex.protect t.mutex (fun () -> t.active > 0)
      && Unix.gettimeofday () < deadline
    then begin
      Unix.sleepf 0.002;
      drain ()
    end
  in
  if grace > 0. then drain ();
  (* Wake every handler blocked in a read; they drain to EOF and drop
     their connections before the pool joins its workers. *)
  let conns = Mutex.protect t.mutex (fun () -> t.conns) in
  List.iter
    (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  (* The poller exits on [stopping] (bounded by its select timeout);
     join it before closing fds out from under its select set. *)
  wake_poller t;
  (match t.poller_domain with
  | Some d ->
      Domain.join d;
      t.poller_domain <- None
  | None -> ());
  Domain_pool.destroy t.pool;
  let leftovers = Mutex.protect t.mutex (fun () -> t.conns) in
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) leftovers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
