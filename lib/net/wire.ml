(** The binary wire protocol of the view server: length-prefixed,
    CRC-framed request/response messages layered on {!Ivm_data.Codec}.

    A frame is [u32 len | u32 crc | body] (little-endian, like every
    codec in this library): [len] is the body length, [crc] the CRC-32
    of the body. The length prefix lets a reader recover the frame
    boundary even when the body fails its checksum, so a single
    corrupted frame costs one error, not the connection. Bodies are
    capped at {!max_body} — a reader never trusts the peer for its
    allocation size.

    Everything here is result-typed over {!error}: short reads,
    truncated frames, checksum failures, unknown opcodes and malformed
    bodies are values, never exceptions — the property harness in
    [test/test_net.ml] feeds this module bit-flipped and cut-off bytes
    and asserts exactly that. The pure {!decode_frame} is the testing
    seam; {!read_frame}/{!write_frame} wrap it around blocking socket
    I/O with partial read/write loops. *)

module Codec = Ivm_data.Codec
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update

let header_len = 8
let max_body = 16 * 1024 * 1024

(* Version 1 was the initial opcode set (0x01-0x0B); version 2 added
   [Version], [Create_view] and [Explain]; version 3 added [Barrier]
   (the cluster router's epoch fence); version 4 adds the epoch-token
   session pair [Ingest_rw]/[Lookup_at] (read-your-writes). A v1 server
   answers any of the new opcodes with [Err "unknown opcode ..."] at
   the message layer (its framing already recovers from unknown
   opcodes), which clients surface as a clean [Remote] error — so the
   probe itself degrades gracefully against old servers. *)
let protocol_version = 4

type error =
  | Eof  (** peer closed cleanly at a frame boundary *)
  | Truncated  (** stream ended mid-frame *)
  | Too_large of int  (** advertised body length over {!max_body} *)
  | Crc_mismatch of { expected : int; actual : int }
  | Bad_op of int  (** unknown opcode byte *)
  | Decode of string  (** malformed message body *)
  | Io of string  (** socket-level failure *)
  | Timeout  (** the [SO_RCVTIMEO]/[SO_SNDTIMEO] deadline expired *)
  | Closed  (** this endpoint was already closed locally *)
  | Remote of string  (** the server answered with an error message *)

let error_to_string = function
  | Eof -> "connection closed"
  | Truncated -> "truncated frame"
  | Too_large n -> Printf.sprintf "frame body of %d bytes exceeds %d" n max_body
  | Crc_mismatch { expected; actual } ->
      Printf.sprintf "frame checksum mismatch (expected %08x, got %08x)" expected actual
  | Bad_op op -> Printf.sprintf "unknown opcode 0x%02x" op
  | Decode msg -> "malformed message: " ^ msg
  | Io msg -> "io error: " ^ msg
  | Timeout -> "operation timed out"
  | Closed -> "endpoint closed"
  | Remote msg -> "server error: " ^ msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let ( let* ) = Result.bind

(* --- framing ---------------------------------------------------------- *)

let frame body =
  let len = String.length body in
  if len > max_body then invalid_arg "Wire.frame: body too large";
  let buf = Buffer.create (header_len + len) in
  Codec.add_u32 buf len;
  Codec.add_u32 buf (Codec.crc32 body ~pos:0 ~len);
  Buffer.add_string buf body;
  Buffer.contents buf

(* A complete frame (header, CRC, body) preserialized into one buffer:
   the zero-copy currency of the server's snapshot cache. Building it
   once at cache-fill time makes serving a cache hit a single [write]
   of these bytes — no per-request encoding, no per-request CRC. *)
let frame_bytes body = Bytes.unsafe_of_string (frame body)

let decode_frame buf ~pos =
  let n = String.length buf in
  if pos < 0 || pos > n then invalid_arg "Wire.decode_frame: position out of range";
  if pos = n then Error Eof
  else if n - pos < header_len then Error Truncated
  else
    let cur = ref pos in
    let len = Codec.u32 buf cur in
    let crc = Codec.u32 buf cur in
    if len > max_body then Error (Too_large len)
    else if n - !cur < len then Error Truncated
    else
      let actual = Codec.crc32 buf ~pos:!cur ~len in
      if actual <> crc then Error (Crc_mismatch { expected = crc; actual })
      else Ok (String.sub buf !cur len, !cur + len)

(* --- blocking socket I/O ---------------------------------------------- *)

let rec really_write fd s pos len =
  if len = 0 then Ok ()
  else
    match Unix.write_substring fd s pos len with
    | 0 -> Error (Io "write returned 0")
    | n -> really_write fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd s pos len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error Timeout
    | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

let write_frame fd body =
  let s = frame body in
  really_write fd s 0 (String.length s)

(* The zero-copy send: one partial-write loop straight out of a
   prebuilt frame, no staging buffer. *)
let write_prebuilt fd b =
  let len = Bytes.length b in
  let rec go pos len =
    if len = 0 then Ok ()
    else
      match Unix.write fd b pos len with
      | 0 -> Error (Io "write returned 0")
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error Timeout
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0 len

(* Read exactly [n] bytes. Zero bytes at the very start is a clean EOF
   when [clean_eof]; an EOF anywhere else is a truncated frame. *)
let read_exact fd n ~clean_eof =
  let buf = Bytes.create n in
  let rec loop pos =
    if pos = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf pos (n - pos) with
      | 0 -> if pos = 0 && clean_eof then Error Eof else Error Truncated
      | k -> loop (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error Timeout
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  loop 0

let read_frame fd =
  let* header = read_exact fd header_len ~clean_eof:true in
  let cur = ref 0 in
  let len = Codec.u32 header cur in
  let crc = Codec.u32 header cur in
  if len > max_body then Error (Too_large len)
  else
    let* body = read_exact fd len ~clean_eof:false in
    let actual = Codec.crc32 body ~pos:0 ~len in
    if actual <> crc then Error (Crc_mismatch { expected = crc; actual }) else Ok body

(* --- messages --------------------------------------------------------- *)

type request =
  | Ping
  | Lookup of { view : string; prefix : Tuple.t }
  | Snapshot of { view : string }
  | Ingest of int Update.t list
  | Subscribe
  | Stats
  | Health
  | Fingerprints
  | Heal
  | Checkpoint
  | Shutdown
  | Version
  | Create_view of string
  | Explain of string
  | Barrier
  | Ingest_rw of int Update.t list
      (** Like [Ingest], but acknowledged with an {!Ack_token} carrying
          the epoch token a session threads into {!Lookup_at}. *)
  | Lookup_at of { view : string; prefix : Tuple.t; token : int; timeout_ms : int }
      (** A read gated on the server's served watermark reaching
          [token]; answered with a {!Token} frame then entry chunks. *)

type response =
  | Pong
  | Chunk of { last : bool; entries : (Tuple.t * int) list }
  | Ack of { admitted : int; dropped : int }
  | Text of string
  | Health_list of (string * string * string option) list
  | Fingerprint_list of (string * int) list
  | Healed of string list
  | Checkpointed of { wal_offset : int }
  | Delta of { epoch : int; updates : int Update.t list }
  | Err of string
  | Bye
  | Subscribed
  | Version_info of { version : int }
  | Barrier_done of { epoch : int }
  | Ack_token of { admitted : int; dropped : int; token : int }
      (** [token] is the queue watermark after this batch was admitted:
          once the served watermark reaches it, the batch is visible. *)
  | Token of { watermark : int }
      (** Prefix of a gated read's chunk stream: the served watermark
          the following entries were materialized at. *)

let request_name = function
  | Ping -> "ping"
  | Lookup _ -> "lookup"
  | Snapshot _ -> "snapshot"
  | Ingest _ -> "ingest"
  | Subscribe -> "subscribe"
  | Stats -> "stats"
  | Health -> "health"
  | Fingerprints -> "fingerprints"
  | Heal -> "heal"
  | Checkpoint -> "checkpoint"
  | Shutdown -> "shutdown"
  | Version -> "version"
  | Create_view _ -> "create_view"
  | Explain _ -> "explain"
  | Barrier -> "barrier"
  | Ingest_rw _ -> "ingest_rw"
  | Lookup_at _ -> "lookup_at"

let response_name = function
  | Pong -> "pong"
  | Chunk _ -> "chunk"
  | Ack _ -> "ack"
  | Text _ -> "text"
  | Health_list _ -> "health_list"
  | Fingerprint_list _ -> "fingerprint_list"
  | Healed _ -> "healed"
  | Checkpointed _ -> "checkpointed"
  | Delta _ -> "delta"
  | Err _ -> "err"
  | Bye -> "bye"
  | Subscribed -> "subscribed"
  | Version_info _ -> "version_info"
  | Barrier_done _ -> "barrier_done"
  | Ack_token _ -> "ack_token"
  | Token _ -> "token"

let int_payload = (module Codec.Int_payload : Codec.PAYLOAD with type t = int)

let add_list add buf xs =
  Codec.add_u32 buf (List.length xs);
  List.iter (add buf) xs

let read_list read s cur =
  let n = Codec.u32 s cur in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (read s cur :: acc) in
  go n []

let add_entry buf (tp, p) =
  Codec.add_tuple buf tp;
  Codec.add_i64 buf p

let entry s cur =
  let tp = Codec.tuple s cur in
  let p = Codec.i64 s cur in
  (tp, p)

let add_update buf u = Codec.add_update int_payload buf u
let update s cur = Codec.update int_payload s cur

let encode_request (r : request) : string =
  let buf = Buffer.create 64 in
  (match r with
  | Ping -> Codec.add_u8 buf 0x01
  | Lookup { view; prefix } ->
      Codec.add_u8 buf 0x02;
      Codec.add_str buf view;
      Codec.add_tuple buf prefix
  | Snapshot { view } ->
      Codec.add_u8 buf 0x03;
      Codec.add_str buf view
  | Ingest updates ->
      Codec.add_u8 buf 0x04;
      add_list add_update buf updates
  | Subscribe -> Codec.add_u8 buf 0x05
  | Stats -> Codec.add_u8 buf 0x06
  | Health -> Codec.add_u8 buf 0x07
  | Fingerprints -> Codec.add_u8 buf 0x08
  | Heal -> Codec.add_u8 buf 0x09
  | Checkpoint -> Codec.add_u8 buf 0x0A
  | Shutdown -> Codec.add_u8 buf 0x0B
  | Version -> Codec.add_u8 buf 0x0C
  | Create_view sql ->
      Codec.add_u8 buf 0x0D;
      Codec.add_str buf sql
  | Explain sql ->
      Codec.add_u8 buf 0x0E;
      Codec.add_str buf sql
  | Barrier -> Codec.add_u8 buf 0x0F
  | Ingest_rw updates ->
      Codec.add_u8 buf 0x10;
      add_list add_update buf updates
  | Lookup_at { view; prefix; token; timeout_ms } ->
      Codec.add_u8 buf 0x11;
      Codec.add_str buf view;
      Codec.add_tuple buf prefix;
      Codec.add_i64 buf token;
      Codec.add_u32 buf timeout_ms);
  Buffer.contents buf

let encode_response (r : response) : string =
  let buf = Buffer.create 64 in
  (match r with
  | Pong -> Codec.add_u8 buf 0x81
  | Chunk { last; entries } ->
      Codec.add_u8 buf 0x82;
      Codec.add_u8 buf (if last then 1 else 0);
      add_list add_entry buf entries
  | Ack { admitted; dropped } ->
      Codec.add_u8 buf 0x83;
      Codec.add_u32 buf admitted;
      Codec.add_u32 buf dropped
  | Text s ->
      Codec.add_u8 buf 0x84;
      Codec.add_str buf s
  | Health_list hs ->
      Codec.add_u8 buf 0x85;
      add_list
        (fun buf (name, health, err) ->
          Codec.add_str buf name;
          Codec.add_str buf health;
          match err with
          | None -> Codec.add_u8 buf 0
          | Some e ->
              Codec.add_u8 buf 1;
              Codec.add_str buf e)
        buf hs
  | Fingerprint_list fps ->
      Codec.add_u8 buf 0x86;
      add_list
        (fun buf (name, fp) ->
          Codec.add_str buf name;
          Codec.add_i64 buf fp)
        buf fps
  | Healed names ->
      Codec.add_u8 buf 0x87;
      add_list Codec.add_str buf names
  | Checkpointed { wal_offset } ->
      Codec.add_u8 buf 0x88;
      Codec.add_i64 buf wal_offset
  | Delta { epoch; updates } ->
      Codec.add_u8 buf 0x89;
      Codec.add_i64 buf epoch;
      add_list add_update buf updates
  | Err msg ->
      Codec.add_u8 buf 0x8A;
      Codec.add_str buf msg
  | Bye -> Codec.add_u8 buf 0x8B
  | Subscribed -> Codec.add_u8 buf 0x8C
  | Version_info { version } ->
      Codec.add_u8 buf 0x8D;
      Codec.add_u32 buf version
  | Barrier_done { epoch } ->
      Codec.add_u8 buf 0x8E;
      Codec.add_i64 buf epoch
  | Ack_token { admitted; dropped; token } ->
      Codec.add_u8 buf 0x8F;
      Codec.add_u32 buf admitted;
      Codec.add_u32 buf dropped;
      Codec.add_i64 buf token
  | Token { watermark } ->
      Codec.add_u8 buf 0x90;
      Codec.add_i64 buf watermark);
  Buffer.contents buf

(* Run a codec reader over a whole body: every [Codec.Corrupt] becomes a
   [Decode] error, and trailing bytes are rejected — a frame is exactly
   one message. *)
let decoding body f =
  let cur = ref 0 in
  match f body cur with
  | v -> if !cur = String.length body then Ok v else Error (Decode "trailing bytes")
  | exception Codec.Corrupt msg -> Error (Decode msg)

let decode_request body : (request, error) result =
  if body = "" then Error (Decode "empty body")
  else
    let op = Char.code body.[0] in
    let read body cur =
      Codec.u8 body cur |> ignore;
      match op with
      | 0x01 -> Ping
      | 0x02 ->
          let view = Codec.str body cur in
          let prefix = Codec.tuple body cur in
          Lookup { view; prefix }
      | 0x03 -> Snapshot { view = Codec.str body cur }
      | 0x04 -> Ingest (read_list update body cur)
      | 0x05 -> Subscribe
      | 0x06 -> Stats
      | 0x07 -> Health
      | 0x08 -> Fingerprints
      | 0x09 -> Heal
      | 0x0A -> Checkpoint
      | 0x0B -> Shutdown
      | 0x0C -> Version
      | 0x0D -> Create_view (Codec.str body cur)
      | 0x0E -> Explain (Codec.str body cur)
      | 0x0F -> Barrier
      | 0x10 -> Ingest_rw (read_list update body cur)
      | 0x11 ->
          let view = Codec.str body cur in
          let prefix = Codec.tuple body cur in
          let token = Codec.i64 body cur in
          let timeout_ms = Codec.u32 body cur in
          Lookup_at { view; prefix; token; timeout_ms }
      | _ -> raise Exit
    in
    match decoding body read with exception Exit -> Error (Bad_op op) | r -> r

let decode_response body : (response, error) result =
  if body = "" then Error (Decode "empty body")
  else
    let op = Char.code body.[0] in
    let read body cur =
      Codec.u8 body cur |> ignore;
      match op with
      | 0x81 -> Pong
      | 0x82 ->
          let last = Codec.u8 body cur <> 0 in
          let entries = read_list entry body cur in
          Chunk { last; entries }
      | 0x83 ->
          let admitted = Codec.u32 body cur in
          let dropped = Codec.u32 body cur in
          Ack { admitted; dropped }
      | 0x84 -> Text (Codec.str body cur)
      | 0x85 ->
          Health_list
            (read_list
               (fun body cur ->
                 let name = Codec.str body cur in
                 let health = Codec.str body cur in
                 let err =
                   if Codec.u8 body cur = 0 then None else Some (Codec.str body cur)
                 in
                 (name, health, err))
               body cur)
      | 0x86 ->
          Fingerprint_list
            (read_list
               (fun body cur ->
                 let name = Codec.str body cur in
                 let fp = Codec.i64 body cur in
                 (name, fp))
               body cur)
      | 0x87 -> Healed (read_list Codec.str body cur)
      | 0x88 -> Checkpointed { wal_offset = Codec.i64 body cur }
      | 0x89 ->
          let epoch = Codec.i64 body cur in
          let updates = read_list update body cur in
          Delta { epoch; updates }
      | 0x8A -> Err (Codec.str body cur)
      | 0x8B -> Bye
      | 0x8C -> Subscribed
      | 0x8D -> Version_info { version = Codec.u32 body cur }
      | 0x8E -> Barrier_done { epoch = Codec.i64 body cur }
      | 0x8F ->
          let admitted = Codec.u32 body cur in
          let dropped = Codec.u32 body cur in
          let token = Codec.i64 body cur in
          Ack_token { admitted; dropped; token }
      | 0x90 -> Token { watermark = Codec.i64 body cur }
      | _ -> raise Exit
    in
    match decoding body read with exception Exit -> Error (Bad_op op) | r -> r
