(** The blocking OCaml client for the view server. One connection per
    value; not domain-safe — give each domain its own connection.
    Every call is result-typed over {!Wire.error}; a server-reported
    failure surfaces as [Error (Remote _)]. *)

type t

val connect : ?host:string -> ?timeout:float -> port:int -> unit -> (t, Wire.error) result
(** Default host is loopback. [timeout] (seconds) sets [SO_RCVTIMEO]
    and [SO_SNDTIMEO] before connecting, so the connect itself and
    every subsequent call is bounded — an expired deadline surfaces as
    [Error Timeout] instead of hanging on a dead peer. Omit it to block
    forever (the historical behaviour). *)

val set_timeout : t -> float option -> unit
(** Adjust the per-op deadline on a live connection; [None] (or [0.])
    removes it. Best-effort: a failure to set the socket option is
    swallowed. *)

val retryable : Wire.error -> bool
(** Whether a failed op is safe to retry on a fresh connection:
    [Timeout]/[Closed]/[Eof]/[Truncated]/[Io] mean the request may
    never have reached the server; [Remote] (and decode-level errors)
    mean it did and was answered — retrying repeats the answer. *)

val close : t -> unit
(** Idempotent; further calls on the value return [Error Closed]. *)

val ping : t -> (unit, Wire.error) result

val lookup :
  t -> view:string -> prefix:Ivm_data.Tuple.t -> ((Ivm_data.Tuple.t * int) list, Wire.error) result
(** CQAP point access: entries of [view] whose first [arity prefix]
    output columns equal [prefix], collected across chunk frames. *)

val snapshot : t -> view:string -> ((Ivm_data.Tuple.t * int) list, Wire.error) result
(** The full output of [view] at one epoch boundary. *)

val ingest : t -> int Ivm_data.Update.t list -> (int * int, Wire.error) result
(** Feed updates to the server's queue; [(admitted, dropped)]. *)

val subscribe : t -> (unit, Wire.error) result
(** Switch this connection to push mode: the server sends one [Delta]
    frame per applied epoch from now on; read them with {!next_delta}.
    Do not issue further requests on a subscribed connection. *)

val next_delta : t -> (int * int Ivm_data.Update.t list, Wire.error) result
(** Block for the next pushed delta: [(epoch, coalesced updates)]. *)

val stats : t -> (string, Wire.error) result
(** The server's Prometheus text exposition. *)

val health : t -> ((string * string * string option) list, Wire.error) result
(** Per view: (name, health, last error). *)

val fingerprints : t -> ((string * int) list, Wire.error) result
val heal : t -> (string list, Wire.error) result

val checkpoint : t -> (int, Wire.error) result
(** Ask the server to checkpoint durably; returns the WAL offset the
    checkpoint is current through. *)

val shutdown : t -> (unit, Wire.error) result
(** Ask the server to shut down; [Ok ()] once the server acked with
    [Bye]. *)

val barrier : t -> (int, Wire.error) result
(** Epoch fence: returns only once every update admitted before this
    call has been applied (and, on a durable server, WAL-synced). The
    result is the scheduler epoch at which the fence held — the cluster
    router compares these across nodes for consistent snapshots. *)

val version : t -> (int, Wire.error) result
(** The peer's protocol version, probed once per connection and cached.
    A v1 server (which answers the probe with an unknown-opcode error)
    reports as [Ok 1]. *)

val create_view : t -> string -> (string, Wire.error) result
(** Execute a SQL script ([CREATE TABLE]/[CREATE MATERIALIZED VIEW]/
    [INSERT]/...) on the server; returns the acknowledgement text.
    Probes {!version} first: against a v1 server this fails with a
    clean [Remote] error naming the required protocol version. *)

val explain : t -> string -> (string, Wire.error) result
(** Run SQL [EXPLAIN] on the server: the chosen engine plus the
    classification facts. Same version-probe behaviour as
    {!create_view}. *)

val ingest_rw : t -> int Ivm_data.Update.t list -> (int * int * int, Wire.error) result
(** Like {!ingest}, but returns [(admitted, dropped, token)] where
    [token] is the server's ingest-queue watermark after this batch:
    once the served watermark reaches it, every update of the batch is
    visible to reads. Needs a v4 server (clean [Remote] error
    otherwise). *)

val lookup_at :
  ?timeout_ms:int ->
  t ->
  view:string ->
  prefix:Ivm_data.Tuple.t ->
  token:int ->
  ((int * (Ivm_data.Tuple.t * int) list), Wire.error) result
(** A read gated on the server's served watermark reaching [token]
    (waiting server-side up to [timeout_ms], default 5000): returns the
    watermark the answer was materialized at plus the entries. Needs a
    v4 server. *)

(** Read-your-writes sessions over one connection: the epoch token of
    the session's last acknowledged write rides every read, and the
    watermark the server reports is re-checked client-side — a server
    that served stale state (failpoint, bug, failover to a lagging
    replica) is caught, not trusted. *)
module Session : sig
  type client := t
  type t

  val create : client -> t
  (** A fresh session with token 0 (reads are ungated until the first
      write). *)

  val client : t -> client
  val token : t -> int
  (** The queue watermark of the last acknowledged {!write}. *)

  val reattach : t -> client -> t
  (** The same session (same token) on a new connection — how a session
      survives a reconnect or server restart: the restarted server must
      expose a served watermark on the same scale (e.g. restored base +
      newly applied) for the token to stay meaningful. *)

  val write : t -> int Ivm_data.Update.t list -> (int * int, Wire.error) result
  (** {!ingest_rw} + advance the session token; [(admitted, dropped)]. *)

  val read :
    ?timeout_ms:int ->
    t ->
    view:string ->
    prefix:Ivm_data.Tuple.t ->
    ((Ivm_data.Tuple.t * int) list, Wire.error) result
  (** {!lookup_at} with the session token; fails with [Remote] if the
      served answer's watermark is behind the token — the
      read-your-writes guarantee, enforced on both ends. *)
end
