(** The cost-based strategy planner: given a lowered query, the declared
    FDs, the view options and (optionally) the observed read/write mix,
    pick the maintenance engine and a witness variable order, and record
    the classification facts that justify the choice — the substance of
    [EXPLAIN].

    Decision table (first match wins):

    + The select uses [MIN]/[MAX], [DISTINCT] or [WINDOW] → the dataflow
      operator graph ({!Ivm_dataflow.Graph}), the only engine with
      incremental rules for non-ring aggregates; the DAG is part of the
      EXPLAIN report.
    + [WITH (STATIC t)] and an exhaustive search (≤
      {!Ivm_query.Static_dynamic.max_search_vars} variables) finds a
      variable order under which every dynamic update propagates in
      constant time with a connex free top → static/dynamic view tree
      over that order (Sec. 4.5); static relations are loaded once and
      excluded from the update stream.
    + [WITH (INSERT ONLY)] and the query is the 3-path full join
      [R(A,B), S(B,C), T(C,D)] → the monotone activation engine:
      amortized O(1) per insert despite the query not being
      q-hierarchical (Sec. 4.6).
    + The query is the triangle count
      ["COUNT(*)" over R(A,B), S(B,C), T(C,A)] → the IVMε batch kernel
      with polarized higher-order deltas (Sec. 3).
    + q-hierarchical → a Fig. 4 delta strategy over the canonical
      free-top order: eager-fact normally, lazy-fact when the observed
      workload is write-heavy (reads < ~1/8 of writes) — lazy defers all
      view work to the rare enumeration points.
    + The Σ-reduct under the declared FDs is q-hierarchical
      (Thm. 4.11) → eager-fact over a free-first chain.
    + Otherwise → factorized view tree over a free-first chain order
      (always valid, free-top by construction); updates may cost more
      than O(1) but enumeration stays constant-delay. *)

module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Sd = Ivm_query.Static_dynamic

type role = { rel : string; flipped : bool }
(** A base table playing one of a kernel's fixed relation slots;
    [flipped] when the table's column order is the reverse of the
    kernel's schema for that slot. *)

type choice =
  | Delta of Ivm_engine.Strategy.kind * Vo.forest
  | Tree of Vo.forest
  | Triangle of { r : role; s : role; t : role }
      (** IVMε batch kernel: roles R(A,B), S(B,C), T(C,A). *)
  | Monotone_path of { r : role; s : role; t : role }
      (** Insert-only path join: roles R(A,B), S(B,C), T(C,D). *)
  | Dataflow
      (** Operator-graph runtime ({!Ivm_dataflow.Graph}): mandatory for
          MIN/MAX, DISTINCT and WINDOW — {!Lower.needs_dataflow}. *)

type stats = { reads : int; writes : int }
(** Observed workload mix, e.g. from {!Ivm_stream.Metrics} op counters. *)

type plan = {
  choice : choice;
  static : string list;  (** relations excluded from the update stream *)
  facts : string list;  (** classification facts justifying [choice] *)
}

val engine_name : plan -> string

val plan :
  ?stats:stats ->
  ?sizes:(string * int) list ->
  ?fds:Ivm_query.Fd.t list ->
  opts:Ast.view_opt list ->
  Lower.t ->
  (plan, string) result
(** [sizes] are current base-relation cardinalities (recorded as a
    planning fact); [stats] the observed read/write mix steering the
    eager/lazy choice. *)

val explain : plan -> string
(** Multi-line report: [engine: <name>] then one [- fact] per line. *)
