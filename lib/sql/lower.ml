module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Value = Ivm_data.Value

type catalog = (string * string list) list

type filter = { rel : string; index : int; value : Value.t }

type extremum = { ecol : string; minimize : bool }

type window = { time : string; size : int }

type t = {
  cq : Cq.t;
  input : string list;
  filters : filter list;
  output_cols : string list;
  param_vars : (int * string) list;
  sum : bool;
  sum_var : string option;  (* the summed column, when [sum] *)
  out_vars : string list;
      (* plain (non-aggregated) select columns under the unification
         renaming, in item order — the grouping columns of the dataflow
         tail operators *)
  distinct : bool;
  extrema : extremum list; (* in item order *)
  window : window option;
}

(* A select that uses MIN/MAX, DISTINCT or WINDOW can only be maintained
   by the dataflow operator-graph engine — the per-query engines have no
   delta rule for non-ring aggregates. *)
let needs_dataflow t = t.distinct || t.extrema <> [] || t.window <> None

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec dedup = function
  | [] -> []
  | x :: tl -> if List.mem x tl then x :: dedup (List.filter (( <> ) x) tl) else x :: dedup tl

(* Union-find over column names; the representative of a class is the
   name that occurs first in FROM-order column enumeration, so lowering
   is deterministic and the common case (no renaming) keeps the user's
   names. *)
module Uf = struct
  type t = { parent : (string, string) Hashtbl.t; rank : (string, int) Hashtbl.t }

  let create order =
    let rank = Hashtbl.create 16 in
    List.iteri (fun i c -> if not (Hashtbl.mem rank c) then Hashtbl.add rank c i) order;
    { parent = Hashtbl.create 16; rank }

  let rec find t c =
    match Hashtbl.find_opt t.parent c with
    | None -> c
    | Some p ->
        let r = find t p in
        if r <> p then Hashtbl.replace t.parent c r;
        r

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      let ka = Hashtbl.find t.rank ra and kb = Hashtbl.find t.rank rb in
      let keep, absorb = if ka <= kb then (ra, rb) else (rb, ra) in
      Hashtbl.replace t.parent absorb keep
    end
end

let select catalog ?(fds = []) ~name (sel : Ast.select) =
  (* FROM resolution. *)
  let* tables =
    List.fold_left
      (fun acc tb ->
        let* acc = acc in
        match List.assoc_opt tb catalog with
        | None -> fail "unknown table %s" tb
        | Some cols ->
            if List.mem_assoc tb acc then
              fail "table %s appears twice in FROM (self-joins are not supported)" tb
            else Ok (acc @ [ (tb, cols) ]))
      (Ok []) sel.Ast.from
  in
  let occurrence_order = List.concat_map snd tables in
  let known c = List.mem c occurrence_order in
  let uf = Uf.create occurrence_order in
  (* WHERE: unify column equalities, collect filters and input vars. *)
  let* () =
    List.fold_left
      (fun acc (p : Ast.pred) ->
        let* () = acc in
        if not (known p.Ast.col) then fail "unknown column %s in WHERE" p.Ast.col
        else
          match p.Ast.rhs with
          | Ast.Col c2 ->
              if not (known c2) then fail "unknown column %s in WHERE" c2
              else begin
                Uf.union uf p.Ast.col c2;
                Ok ()
              end
          | Ast.Const _ | Ast.Param _ -> Ok ())
      (Ok ()) sel.Ast.where
  in
  let repr c = Uf.find uf c in
  let filters =
    List.concat_map
      (fun (p : Ast.pred) ->
        match p.Ast.rhs with
        | Ast.Const v ->
            let target = repr p.Ast.col in
            List.concat_map
              (fun (rel, cols) ->
                List.filteri (fun _ c -> repr c = target) cols
                |> List.map (fun c ->
                       { rel; index = Option.get (List.find_index (( = ) c) cols); value = v }))
              tables
        | Ast.Col _ | Ast.Param _ -> [])
      sel.Ast.where
  in
  let input =
    dedup
      (List.filter_map
         (fun (p : Ast.pred) ->
           match p.Ast.rhs with Ast.Param _ -> Some (repr p.Ast.col) | _ -> None)
         sel.Ast.where)
  in
  (* Atoms: the table schemas under the unification renaming. *)
  let* atoms =
    List.fold_left
      (fun acc (rel, cols) ->
        let* acc = acc in
        match Cq.atom rel (List.map repr cols) with
        | atom -> Ok (acc @ [ atom ])
        | exception Invalid_argument _ ->
            fail "WHERE equalities collapse two columns of table %s onto one variable" rel)
      (Ok []) tables
  in
  (* SELECT items. *)
  let items =
    match sel.Ast.items with
    | [ Ast.Star ] -> List.map (fun c -> Ast.Column c) (dedup (List.map repr occurrence_order))
    | items -> items
  in
  let* () =
    List.fold_left
      (fun acc it ->
        let* () = acc in
        match it with
        | Ast.Column c | Ast.Sum c | Ast.Min c | Ast.Max c ->
            if known c then Ok () else fail "unknown column %s in SELECT" c
        | Ast.Count | Ast.Star -> Ok ())
      (Ok ()) items
  in
  let ring_aggs = List.filter (function Ast.Count | Ast.Sum _ -> true | _ -> false) items in
  let extrema_items = List.filter (function Ast.Min _ | Ast.Max _ -> true | _ -> false) items in
  let aggs = ring_aggs @ extrema_items in
  let* () =
    if List.length ring_aggs > 1 then fail "at most one aggregate per SELECT" else Ok ()
  in
  let* () =
    if ring_aggs <> [] && extrema_items <> [] then
      fail "MIN/MAX cannot be combined with COUNT or SUM in one SELECT"
    else Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun it -> List.length (List.filter (( = ) it) extrema_items) > 1)
        extrema_items
    with
    | Some it -> fail "duplicate %s in SELECT" (Ast.print_item it)
    | None -> Ok ()
  in
  let plain_cols =
    List.filter_map (function Ast.Column c -> Some c | _ -> None) items
  in
  let group_vars = dedup (List.map repr sel.Ast.group_by) in
  let out_vars = dedup (List.map repr plain_cols) in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        if known c then Ok () else fail "unknown column %s in GROUP BY" c)
      (Ok ()) sel.Ast.group_by
  in
  (* Grouping discipline: with an aggregate (or an explicit GROUP BY),
     the non-aggregated select columns and the GROUP BY set must
     coincide. *)
  let* () =
    if aggs <> [] || sel.Ast.group_by <> [] then begin
      if aggs = [] && group_vars <> out_vars then
        fail "GROUP BY without an aggregate must list exactly the selected columns"
      else if
        aggs <> []
        && (List.exists (fun v -> not (List.mem v group_vars)) out_vars
           || List.exists (fun v -> not (List.mem v out_vars)) group_vars)
      then fail "non-aggregated SELECT columns must match GROUP BY"
      else Ok ()
    end
    else Ok ()
  in
  let* () =
    if List.length (dedup plain_cols) <> List.length out_vars then
      fail "SELECT lists two columns made equal by WHERE; keep one of them"
    else Ok ()
  in
  let sum_col = List.find_map (function Ast.Sum c -> Some (repr c) | _ -> None) items in
  let* () =
    match sum_col with
    | Some s when List.mem s out_vars -> fail "SUM column cannot also be grouped"
    | Some _ when input <> [] -> fail "SUM combined with '?' parameters is not supported"
    | _ -> Ok ()
  in
  (* Dataflow-only features: MIN/MAX aggregates, DISTINCT, WINDOW. *)
  let extrema =
    List.filter_map
      (function
        | Ast.Min c -> Some { ecol = repr c; minimize = true }
        | Ast.Max c -> Some { ecol = repr c; minimize = false }
        | Ast.Star | Ast.Column _ | Ast.Count | Ast.Sum _ -> None)
      items
  in
  let* () =
    match List.find_opt (fun e -> List.mem e.ecol out_vars) extrema with
    | Some e -> fail "MIN/MAX column %s cannot also be grouped" e.ecol
    | None -> Ok ()
  in
  let* () =
    if List.length extrema > 1 && out_vars = [] then
      fail "multiple MIN/MAX aggregates require a GROUP BY"
    else Ok ()
  in
  let* () =
    if sel.Ast.distinct && aggs <> [] then
      fail "DISTINCT cannot be combined with aggregates"
    else if sel.Ast.distinct && sel.Ast.group_by <> [] then
      fail "DISTINCT with GROUP BY is not supported"
    else Ok ()
  in
  let* window =
    match sel.Ast.window with
    | None -> Ok None
    | Some w ->
        if not (known w.Ast.wcol) then fail "unknown column %s in WINDOW" w.Ast.wcol
        else if sel.Ast.distinct then fail "WINDOW cannot be combined with DISTINCT"
        else if extrema <> [] then
          fail "WINDOW supports COUNT and SUM aggregates, not MIN/MAX"
        else if ring_aggs = [] then
          fail "WINDOW requires a COUNT(*) or SUM aggregate"
        else Ok (Some { time = repr w.Ast.wcol; size = w.Ast.wsize })
  in
  let dataflow = sel.Ast.distinct || extrema <> [] || window <> None in
  let* () =
    if dataflow && input <> [] then
      fail "MIN/MAX, DISTINCT and WINDOW are not supported with '?' parameters"
    else Ok ()
  in
  let input = List.filter (fun v -> not (List.mem v out_vars)) input in
  let free =
    if dataflow then
      (* The dataflow compiler reads columns positionally off the joined
         node's full schema; the head only needs to name every column the
         tail operators consume. *)
      dedup
        (out_vars
        @ List.map (fun e -> e.ecol) extrema
        @ (match sum_col with Some s -> [ s ] | None -> [])
        @ match window with Some w -> [ w.time ] | None -> [])
    else out_vars @ (match sum_col with Some s -> [ s ] | None -> input)
  in
  let* cq =
    match Cq.make ~name ~free atoms with
    | q -> Ok q
    | exception Invalid_argument m -> fail "%s" m
  in
  (* The user-facing header: plain columns in item order, the aggregate
     (if any) rendered last — matching the engine's tuple layout of
     output variables then payload. *)
  let output_cols =
    (match window with Some w -> [ "w_" ^ w.time ] | None -> [])
    @ dedup plain_cols
    @ List.filter_map
        (function
          | Ast.Count -> Some "COUNT(*)"
          | Ast.Sum c -> Some (Printf.sprintf "SUM(%s)" c)
          | Ast.Min c -> Some (Printf.sprintf "MIN(%s)" c)
          | Ast.Max c -> Some (Printf.sprintf "MAX(%s)" c)
          | Ast.Star | Ast.Column _ -> None)
        items
  in
  let param_vars =
    List.filter_map
      (fun (p : Ast.pred) ->
        match p.Ast.rhs with Ast.Param i -> Some (i, repr p.Ast.col) | _ -> None)
      sel.Ast.where
  in
  let renamed_fds =
    List.concat_map
      (fun (tb, tfds) ->
        if List.mem_assoc tb tables then
          List.map
            (fun (fd : Fd.t) ->
              Fd.make (List.map repr fd.Fd.lhs) (List.map repr fd.Fd.rhs))
            tfds
        else [])
      fds
  in
  Ok
    ( {
        cq;
        input;
        filters;
        output_cols;
        param_vars;
        sum = sum_col <> None;
        sum_var = sum_col;
        out_vars;
        distinct = sel.Ast.distinct;
        extrema;
        window;
      },
      renamed_fds )

let subst_params params (sel : Ast.select) =
  let* where =
    List.fold_left
      (fun acc (p : Ast.pred) ->
        let* acc = acc in
        match p.Ast.rhs with
        | Ast.Param i -> (
            match List.nth_opt params (i - 1) with
            | Some v -> Ok (acc @ [ { p with Ast.rhs = Ast.Const v } ])
            | None -> fail "parameter ?%d is unbound (give it with --param)" i)
        | Ast.Const _ | Ast.Col _ -> Ok (acc @ [ p ]))
      (Ok []) sel.Ast.where
  in
  Ok { sel with Ast.where }
