(** From a plan to a running engine: build the {!Ivm_engine.Maintainable}
    handle the registry / server / CLI host for a SQL-created view.

    The wrapper around the chosen engine owns the SQL-specific residue:

    - constant-predicate {e filters} are applied to the initial load and
      to every incoming update (selections commute with deltas);
    - updates to [STATIC] relations are dropped (and the handle's
      [relations] list omits them, so the registry never routes them);
    - for the fixed-schema kernels (triangle, monotone path) updates are
      translated from table names and column orders onto the kernel's
      R/S/T slots, flipping binary tuples where the declaration order is
      reversed;
    - a [SUM(c)] view folds [Σ c·multiplicity] out of the trailing free
      column at read time, so [enumerate]/[output_count]/[fingerprint]
      describe the user-visible grouped sums. SUM columns must hold
      integers;
    - a {!Planner.Dataflow} plan compiles onto an
      {!Ivm_dataflow.Graph}: sources (with filter nodes for constant
      predicates), left-deep natural joins, then the distinct /
      extremum / window tail, grouped on the plain select columns.
      Initial data is pushed through the graph directly so [STATIC]
      tables reach the operators. *)

type source = (string * Ivm_data.Relation.Z.t) list
(** Current table contents, keyed by table name; tuple fields are in
    declaration (column) order. *)

val build :
  name:string ->
  Lower.t ->
  Planner.plan ->
  source ->
  (Ivm_engine.Maintainable.t, string) result

val dag : name:string -> Lower.t -> (string list, string) result
(** The operator DAG a {!Planner.Dataflow} plan would run on — built
    empty, one {!Ivm_dataflow.Graph.describe} line per node — for
    EXPLAIN. [Error] when the select cannot lower onto a graph (e.g. a
    disconnected join). *)
