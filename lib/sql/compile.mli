(** From a plan to a running engine: build the {!Ivm_engine.Maintainable}
    handle the registry / server / CLI host for a SQL-created view.

    The wrapper around the chosen engine owns the SQL-specific residue:

    - constant-predicate {e filters} are applied to the initial load and
      to every incoming update (selections commute with deltas);
    - updates to [STATIC] relations are dropped (and the handle's
      [relations] list omits them, so the registry never routes them);
    - for the fixed-schema kernels (triangle, monotone path) updates are
      translated from table names and column orders onto the kernel's
      R/S/T slots, flipping binary tuples where the declaration order is
      reversed;
    - a [SUM(c)] view folds [Σ c·multiplicity] out of the trailing free
      column at read time, so [enumerate]/[output_count]/[fingerprint]
      describe the user-visible grouped sums. SUM columns must hold
      integers. *)

type source = (string * Ivm_data.Relation.Z.t) list
(** Current table contents, keyed by table name; tuple fields are in
    declaration (column) order. *)

val build :
  name:string ->
  Lower.t ->
  Planner.plan ->
  source ->
  (Ivm_engine.Maintainable.t, string) result
