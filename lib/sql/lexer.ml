type token =
  | Ident of string
  | Int of int
  | Real of float
  | Str of string
  | Punct of char
  | Arrow
  | Eof

let token_name = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int n -> Printf.sprintf "integer %d" n
  | Real f -> Printf.sprintf "number %g" f
  | Str s -> Printf.sprintf "string '%s'" s
  | Punct c -> Printf.sprintf "'%c'" c
  | Arrow -> "'->'"
  | Eof -> "end of input"

exception Error of { msg : string; offset : int }

let describe text offset =
  let offset = min offset (String.length text) in
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < offset && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  Printf.sprintf "offset %d (line %d, column %d)" offset !line (offset - !bol + 1)

type t = {
  text : string;
  mutable pos : int;  (** frontier: first unconsumed character *)
  mutable tok : token;
  mutable tok_pos : int;  (** offset the current token starts at *)
}

let fail offset fmt = Printf.ksprintf (fun msg -> raise (Error { msg; offset })) fmt

let is_ident_start c = c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Skip whitespace and [-- line comments]; leaves [t.pos] on the first
   character of the next token (or at end of input). *)
let rec skip t =
  let n = String.length t.text in
  if t.pos < n then
    match t.text.[t.pos] with
    | ' ' | '\t' | '\r' | '\n' ->
        t.pos <- t.pos + 1;
        skip t
    | '-' when t.pos + 1 < n && t.text.[t.pos + 1] = '-' ->
        while t.pos < n && t.text.[t.pos] <> '\n' do
          t.pos <- t.pos + 1
        done;
        skip t
    | _ -> ()

let scan t : token =
  skip t;
  let n = String.length t.text in
  t.tok_pos <- t.pos;
  if t.pos >= n then Eof
  else
    let c = t.text.[t.pos] in
    if is_ident_start c then begin
      let start = t.pos in
      while t.pos < n && is_ident_char t.text.[t.pos] do
        t.pos <- t.pos + 1
      done;
      Ident (String.sub t.text start (t.pos - start))
    end
    else if is_digit c then begin
      let start = t.pos in
      while t.pos < n && is_digit t.text.[t.pos] do
        t.pos <- t.pos + 1
      done;
      if t.pos < n && t.text.[t.pos] = '.' && t.pos + 1 < n && is_digit t.text.[t.pos + 1]
      then begin
        t.pos <- t.pos + 1;
        while t.pos < n && is_digit t.text.[t.pos] do
          t.pos <- t.pos + 1
        done;
        Real (float_of_string (String.sub t.text start (t.pos - start)))
      end
      else
        match int_of_string_opt (String.sub t.text start (t.pos - start)) with
        | Some v -> Int v
        | None -> fail start "integer literal out of range"
    end
    else
      match c with
      | '\'' ->
          (* Single-quoted string; '' escapes a quote. *)
          let buf = Buffer.create 16 in
          let start = t.pos in
          t.pos <- t.pos + 1;
          let rec go () =
            if t.pos >= n then fail start "unterminated string literal"
            else
              match t.text.[t.pos] with
              | '\'' when t.pos + 1 < n && t.text.[t.pos + 1] = '\'' ->
                  Buffer.add_char buf '\'';
                  t.pos <- t.pos + 2;
                  go ()
              | '\'' ->
                  t.pos <- t.pos + 1;
                  Str (Buffer.contents buf)
              | ch ->
                  Buffer.add_char buf ch;
                  t.pos <- t.pos + 1;
                  go ()
          in
          go ()
      | '-' when t.pos + 1 < n && t.text.[t.pos + 1] = '>' ->
          t.pos <- t.pos + 2;
          Arrow
      | '(' | ')' | ',' | ';' | '=' | '*' | '?' | '-' ->
          t.pos <- t.pos + 1;
          Punct c
      | c -> fail t.pos "unexpected character %C" c

let create text =
  let t = { text; pos = 0; tok = Eof; tok_pos = 0 } in
  t.tok <- scan t;
  t

let pos t = t.tok_pos
let peek t = t.tok

let next t =
  let tok = t.tok in
  t.tok <- scan t;
  tok
