(** Lowering SELECT onto the paper's CQAP/CQ representation
    ({!Ivm_query.Cq}) plus the residue CQ cannot express:

    - Columns sharing a name across FROM tables become one query
      variable (natural-join convention — exactly how the fuzz
      generator's schemas name atom variables). [WHERE a = b] unifies
      two further columns (union-find; the representative is the
      first-occurring name).
    - [WHERE a = const] becomes a per-relation {e filter}
      [(relation, column index, value)] applied to the initial database
      and to every incoming update — selections commute with deltas, so
      filtering the input stream is exact.
    - [WHERE a = ?] makes [a] an {e input variable} — {!Ivm_query.Parse}'s
      access-pattern convention: the CQ's free list is output columns
      then input variables.
    - [SUM(c)] appends [c] as a trailing free variable; the engine
      maintains the grouped multiplicities and {!Compile} folds
      [Σ value·multiplicity] out of the trailing column at read time.
      ["COUNT(*)"] is the ring payload itself and needs no residue. *)

module Cq = Ivm_query.Cq
module Value = Ivm_data.Value

type catalog = (string * string list) list
(** Table name -> column names, in declaration order. *)

type filter = { rel : string; index : int; value : Value.t }

type extremum = { ecol : string; minimize : bool }
(** One [MIN(ecol)] ([minimize]) or [MAX(ecol)] select item. *)

type window = { time : string; size : int }
(** A [WINDOW (TUMBLE time SIZE size)] clause, variable-renamed. *)

type t = {
  cq : Cq.t;
  input : string list;  (** CQAP input variables (free = output @ input) *)
  filters : filter list;
  output_cols : string list;
      (** header the user sees: the window pane column (if any), plain
          columns in item order, then the aggregates — matching the
          tuple-then-payload layout *)
  param_vars : (int * string) list;
      (** each ['?'] parameter with the query variable it binds *)
  sum : bool;  (** the last CQ free variable is a summed column *)
  sum_var : string option;  (** the summed column, when [sum] *)
  out_vars : string list;
      (** plain select columns under the renaming, in item order — the
          grouping columns of the dataflow tail operators *)
  distinct : bool;
  extrema : extremum list;  (** in item order *)
  window : window option;
}

val needs_dataflow : t -> bool
(** The select uses MIN/MAX, DISTINCT or WINDOW — features only the
    dataflow operator-graph engine can maintain incrementally. *)

val select :
  catalog -> ?fds:(string * Ivm_query.Fd.t list) list -> name:string ->
  Ast.select -> (t * Ivm_query.Fd.t list, string) result
(** Lower one SELECT. The returned FD list is the union of the declared
    FDs of the FROM tables, variable-renamed alongside the query — the
    planner's Σ-reduct input. *)

val subst_params : Value.t list -> Ast.select -> (Ast.select, string) result
(** Replace [Param i] with the [i]-th value; [Error] on an unbound
    parameter. *)
