module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Sd = Ivm_query.Static_dynamic
module Hier = Ivm_query.Hierarchical
module Hg = Ivm_query.Hypergraph
module Fd = Ivm_query.Fd
module Strategy = Ivm_engine.Strategy

type role = { rel : string; flipped : bool }

type choice =
  | Delta of Strategy.kind * Vo.forest
  | Tree of Vo.forest
  | Triangle of { r : role; s : role; t : role }
  | Monotone_path of { r : role; s : role; t : role }
  | Dataflow

type stats = { reads : int; writes : int }

type plan = { choice : choice; static : string list; facts : string list }

let engine_name p =
  match p.choice with
  | Delta (k, _) -> Printf.sprintf "%s delta strategy" (Strategy.kind_name k)
  | Tree _ when p.static <> [] -> "static/dynamic view tree"
  | Tree _ -> "factorized view tree"
  | Triangle _ -> "IVMeps triangle batch kernel"
  | Monotone_path _ -> "insert-only monotone path join"
  | Dataflow -> "dataflow operator graph"

(* A free-first chain is a valid variable order for any query, and its
   free prefix is a connex top fragment — the universal fallback. *)
let chain_forest (cq : Cq.t) =
  let bound = List.filter (fun v -> not (List.mem v cq.Cq.free)) (Cq.vars cq) in
  match cq.Cq.free @ bound with [] -> [] | vs -> [ Vo.chain vs ]

let binary (a : Cq.atom) = List.length a.Cq.vars = 2

let shared (a : Cq.atom) (b : Cq.atom) =
  List.filter (fun v -> List.mem v b.Cq.vars) a.Cq.vars

let other_var (a : Cq.atom) v =
  List.find (fun x -> x <> v) a.Cq.vars

(* Kernel slot orientation: the slot's schema is [x; y]; the table may
   store the reverse. *)
let role_of (a : Cq.atom) x y =
  if a.Cq.vars = [ x; y ] then Some { rel = a.Cq.rel; flipped = false }
  else if a.Cq.vars = [ y; x ] then Some { rel = a.Cq.rel; flipped = true }
  else None

(* "COUNT(*)" over R(A,B), S(B,C), T(C,A): three binary atoms on three
   variables, each shared by exactly two atoms, Boolean head. *)
let triangle_shape (cq : Cq.t) =
  match cq.Cq.atoms with
  | [ a1; a2; a3 ] when List.for_all binary [ a1; a2; a3 ] && cq.Cq.free = [] -> (
      let vars = Cq.vars cq in
      if List.length vars <> 3 then None
      else
        match shared a1 a2 with
        | [ b ] -> (
            let a = other_var a1 b in
            let c = other_var a2 b in
            if c = a then None
            else
              match (role_of a1 a b, role_of a2 b c, role_of a3 c a) with
              | Some r, Some s, Some t -> Some (r, s, t)
              | _ -> None)
        | _ -> (
            (* a2 may be the T slot instead: try the other pairing. *)
            match shared a1 a3 with
            | [ b ] -> (
                let a = other_var a1 b in
                let c = other_var a3 b in
                if c = a then None
                else
                  match (role_of a1 a b, role_of a3 b c, role_of a2 c a) with
                  | Some r, Some s, Some t -> Some (r, s, t)
                  | _ -> None)
            | _ -> None))
  | _ -> None

(* Full path join R(A,B), S(B,C), T(C,D) with head (A,B,C,D): three
   binary atoms forming a chain, all four variables free in chain
   order. *)
let path_shape (cq : Cq.t) =
  if List.length cq.Cq.atoms <> 3 || not (List.for_all binary cq.Cq.atoms) then
    None
  else if List.length (Cq.vars cq) <> 4 then None
  else
    (* Try every atom ordering as (R, S, T). *)
    let rec perms = function
      | [] -> [ [] ]
      | l ->
          List.concat_map
            (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( != ) x) l)))
            l
    in
    List.find_map
      (fun order ->
        match order with
        | [ ar; as_; at ] -> (
            match (shared ar as_, shared as_ at, shared ar at) with
            | [ b ], [ c ], [] when b <> c ->
                let a = other_var ar b in
                let d = other_var at c in
                if cq.Cq.free <> [ a; b; c; d ] then None
                else (
                  match (role_of ar a b, role_of as_ b c, role_of at c d) with
                  | Some r, Some s, Some t -> Some (r, s, t)
                  | _ -> None)
            | _ -> None)
        | _ -> None)
      (perms cq.Cq.atoms)

let fact fmt = Printf.ksprintf (fun s -> s) fmt

let shape_facts (cq : Cq.t) =
  [
    fact "query: %d atoms, %d variables (%d free), self-join-free"
      (List.length cq.Cq.atoms)
      (List.length (Cq.vars cq))
      (List.length cq.Cq.free);
    fact "hierarchical: %b, q-hierarchical: %b, free-connex: %b"
      (Hier.is_hierarchical cq)
      (Hier.is_q_hierarchical cq)
      (Hg.is_free_connex cq);
  ]

let plan ?stats ?(sizes = []) ?(fds = []) ~opts (l : Lower.t) =
  let cq = l.Lower.cq in
  let statics =
    List.filter_map (function Ast.Static t -> Some t | _ -> None) opts
    |> List.filter (fun t -> List.mem t (Cq.relation_names cq))
  in
  let insert_only = List.mem Ast.Insert_only opts in
  let base =
    shape_facts cq
    @
    match
      List.filter (fun (r, _) -> List.mem r (Cq.relation_names cq)) sizes
    with
    | [] -> []
    | sizes ->
        [
          fact "relation sizes: %s"
            (String.concat ", "
               (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) sizes));
        ]
  in
  if Lower.needs_dataflow l then begin
    let features =
      (if l.Lower.distinct then [ "DISTINCT" ] else [])
      @ List.map
          (fun (e : Lower.extremum) ->
            Printf.sprintf "%s(%s)"
              (if e.Lower.minimize then "MIN" else "MAX")
              e.Lower.ecol)
          l.Lower.extrema
      @
      match l.Lower.window with
      | Some w -> [ Printf.sprintf "TUMBLE %s SIZE %d" w.Lower.time w.Lower.size ]
      | None -> []
    in
    Ok
      {
        choice = Dataflow;
        static = statics;
        facts =
          base
          @ [
              fact
                "%s: only the operator-graph runtime has incremental rules \
                 for these (the per-query engines maintain ring aggregates \
                 only)"
                (String.concat ", " features);
              fact
                "joins propagate the bilinear delta ΔQ = ΔR⋈S + R⋈ΔS + \
                 ΔR⋈ΔS; extrema keep a per-group ordered multiset with a \
                 re-scan fallback when a served value is deleted; windows \
                 retract panes once the watermark passes them";
            ]
          @ (if statics = [] then []
             else
               [
                 fact "static relations: %s (loaded once, no update stream)"
                   (String.concat ", " statics);
               ])
          @
          if insert_only then
            [
              fact
                "INSERT ONLY declared: the operator graph handles deletes \
                 anyway, the hint changes nothing";
            ]
          else [];
      }
  end
  else if statics <> [] then begin
    (* Static/dynamic: search for a witness order (Sec. 4.5). *)
    let adornment = List.map (fun t -> (t, Sd.Static)) statics in
    let vars = Cq.vars cq in
    let witness =
      if List.length vars > Sd.max_search_vars then None
      else
        List.find_opt
          (fun f -> Sd.tractable_with_order cq adornment f && Vo.free_top cq f)
          (Sd.all_forests vars)
    in
    match witness with
    | Some forest ->
        Ok
          {
            choice = Tree forest;
            static = statics;
            facts =
              base
              @ [
                  fact "static relations: %s (loaded once, no update stream)"
                    (String.concat ", " statics);
                  fact
                    "witness order found: constant-time propagation for every \
                     dynamic relation, free variables connex at the top";
                ];
          }
    | None ->
        Ok
          {
            choice = Tree (chain_forest cq);
            static = statics;
            facts =
              base
              @ [
                  fact "static relations: %s (loaded once, no update stream)"
                    (String.concat ", " statics);
                  fact
                    "no static/dynamic witness order within the search bound; \
                     falling back to a free-first chain view tree";
                ];
          }
  end
  else if insert_only then begin
    match path_shape cq with
    | Some (r, s, t) when not l.Lower.sum && l.Lower.input = [] ->
        Ok
          {
            choice = Monotone_path { r; s; t };
            static = [];
            facts =
              base
              @ [
                  fact
                    "INSERT ONLY + full path join %s-%s-%s: monotone \
                     activation gives amortized O(1) per insert (the query \
                     is not q-hierarchical, so this beats any delta \
                     strategy)" r.rel s.rel t.rel;
                  fact "alpha-acyclic: %b" (Hg.is_alpha_acyclic cq);
                ];
          }
    | _ ->
        Ok
          {
            choice = Tree (chain_forest cq);
            static = [];
            facts =
              base
              @ [
                  fact
                    "INSERT ONLY declared but the query is not the supported \
                     3-path full join; using the general view tree";
                ];
          }
  end
  else
    match triangle_shape cq with
    | Some (r, s, t) when not l.Lower.sum && l.Lower.input = [] ->
        Ok
          {
            choice = Triangle { r; s; t };
            static = [];
            facts =
              base
              @ [
                  fact
                    "triangle count %s-%s-%s: IVMeps maintains it with \
                     polarized batch deltas in sub-output time (Sec. 3)"
                    r.rel s.rel t.rel;
                  fact "not q-hierarchical: single-tuple updates are \
                        Omega(sqrt N) amortized in the worst case";
                ];
          }
    | _ ->
        if Hier.is_q_hierarchical cq then begin
          let forest =
            match Vo.canonical cq with
            | Some f -> f
            | None -> chain_forest cq (* unreachable: q-hier is hierarchical *)
          in
          let lazy_pick, why =
            match stats with
            | Some { reads; writes } when writes > 8 * (max reads 1) ->
                ( true,
                  fact
                    "observed workload is write-heavy (%d writes vs %d \
                     reads): lazy defers view work to enumeration"
                    writes reads )
            | Some { reads; writes } ->
                ( false,
                  fact
                    "observed workload reads often enough (%d reads vs %d \
                     writes) to keep views eagerly current"
                    reads writes )
            | None -> (false, fact "no workload statistics: defaulting to eager")
          in
          let kind = if lazy_pick then Strategy.Lazy_fact else Strategy.Eager_fact in
          Ok
            {
              choice = Delta (kind, forest);
              static = [];
              facts =
                base
                @ [
                    fact
                      "q-hierarchical: O(1) single-tuple updates and O(1) \
                       enumeration delay over the canonical free-top order \
                       (Thm. 4.1)";
                    why;
                  ];
            }
        end
        else if fds <> [] && Fd.q_hierarchical_under fds cq then
          Ok
            {
              choice = Delta (Strategy.Eager_fact, chain_forest cq);
              static = [];
              facts =
                base
                @ [
                    fact
                      "not q-hierarchical as written, but its Sigma-reduct \
                       under the declared FDs is: over FD-satisfying \
                       databases maintenance is O(1)/O(1) (Thm. 4.11)";
                    fact "declared FDs: %s"
                      (String.concat "; "
                         (List.map
                            (fun (fd : Fd.t) ->
                              Printf.sprintf "%s -> %s"
                                (String.concat "," fd.Fd.lhs)
                                (String.concat "," fd.Fd.rhs))
                            fds));
                  ];
            }
        else
          let witness =
            match Hier.non_hierarchical_witness cq with
            | Some (x, y) ->
                fact
                  "not q-hierarchical (variables %s and %s have properly \
                   overlapping atom sets): constant-time updates are \
                   impossible (OuMv-hardness, Thm. 4.1)"
                  x y
            | None ->
                fact
                  "hierarchical but not free-dominant: constant-time \
                   maintenance with constant-delay enumeration is impossible \
                   (Thm. 4.1)"
          in
          Ok
            {
              choice = Tree (chain_forest cq);
              static = [];
              facts =
                base
                @ [
                    witness;
                    fact
                      "free-first chain view tree: enumeration stays \
                       constant-delay; updates pay the join cost";
                  ];
            }

let explain p =
  let b = Buffer.create 256 in
  Buffer.add_string b ("engine: " ^ engine_name p);
  List.iter
    (fun f ->
      Buffer.add_string b "\n  - ";
      Buffer.add_string b f)
    p.facts;
  Buffer.contents b
