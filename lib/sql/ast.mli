(** The typed AST of the SQL subset, with a canonical pretty-printer.
    The printer and {!Parser} are exact inverses on well-formed
    statements — [parse (print stmt) = stmt] is a qcheck property in
    [test/test_sql.ml] — which is what lets the fuzz driver round-trip
    generated queries through concrete SQL text. *)

module Value = Ivm_data.Value

type rhs =
  | Const of Value.t
  | Param of int  (** [?], numbered 1.. in order of appearance *)
  | Col of string  (** column-to-column equality (a join condition) *)

type pred = { col : string; rhs : rhs }

type item =
  | Star
  | Column of string
  | Count  (** ["COUNT(*)"] *)
  | Sum of string  (** [SUM(col)] *)
  | Min of string  (** [MIN(col)] *)
  | Max of string  (** [MAX(col)] *)

type window = { wcol : string; wsize : int }
(** [WINDOW (TUMBLE wcol SIZE wsize)]: bucket rows into tumbling panes
    of [wsize] event-time units of the integer column [wcol] and
    aggregate per pane; expired panes are retracted from the view. *)

type select = {
  distinct : bool;  (** [SELECT DISTINCT]: set semantics on the output *)
  items : item list;
  from : string list;
  where : pred list;  (** conjunction *)
  group_by : string list;
  window : window option;
}

type view_opt =
  | Insert_only  (** [WITH (INSERT ONLY)]: enable monotone engines *)
  | Static of string  (** [WITH (STATIC t)]: [t] never changes after load *)

type fd = { lhs : string list; rhs_col : string }
(** [FD a, b -> c]; a multi-column right-hand side is written as several
    FD clauses (keeps the clause grammar unambiguous inside the
    comma-separated CREATE TABLE body). *)

type stmt =
  | Create_table of { table : string; cols : string list; fds : fd list }
  | Create_view of { view : string; opts : view_opt list; select : select }
  | Insert of { table : string; rows : Value.t list list }
  | Delete of { table : string; rows : Value.t list list }
  | Select of select
  | Explain of stmt

val print_item : item -> string
val print_select : select -> string
val print : stmt -> string
(** Canonical concrete syntax: uppercase keywords, single spaces, no
    trailing semicolon. *)

val equal_select : select -> select -> bool
val equal : stmt -> stmt -> bool
(** Structural equality, except [Value.t] payloads are compared with
    {!Ivm_data.Value.equal} (NaN-safe for reals). *)
