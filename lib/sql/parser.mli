(** Recursive-descent parser for the SQL subset. Grammar (keywords
    case-insensitive, identifiers case-sensitive, [--] line comments):

    {v
    script  := stmt (';' stmt)* ';'? EOF
    stmt    := EXPLAIN stmt
             | CREATE TABLE name '(' col (',' col)* (',' fd)* ')'
             | CREATE MATERIALIZED VIEW name [WITH '(' opt (',' opt)* ')']
               AS select
             | INSERT INTO name VALUES row (',' row)*
             | DELETE FROM name VALUES row (',' row)*
             | select
    fd      := FD col (',' col)* '->' col (',' col)*
    opt     := INSERT ONLY | STATIC name
    select  := SELECT items FROM name (',' name)*
               [WHERE pred (AND pred)*] [GROUP BY col (',' col)*]
    items   := '*' | item (',' item)*
    item    := COUNT '(' '*' ')' | SUM '(' col ')' | col
    pred    := col '=' (value | '?' | col)
    row     := '(' value (',' value)* ')'
    value   := ['-'] INT | ['-'] REAL | STRING
    v}

    All errors are positioned: the [Error] string ends with
    ["at offset N (line L, column C)"]. *)

val stmt : string -> (Ast.stmt, string) result
(** Parse exactly one statement (an optional trailing [';'] is allowed). *)

val script : string -> (Ast.stmt list, string) result
(** Parse a [';']-separated script. *)
