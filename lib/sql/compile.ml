module Rel = Ivm_data.Relation.Z
module Db = Ivm_data.Database.Z
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Update = Ivm_data.Update
module Cq = Ivm_query.Cq
module M = Ivm_engine.Maintainable
module View_tree = Ivm_engine.View_tree
module Strategy = Ivm_engine.Strategy
module Triangle_batch = Ivm_engine.Triangle_batch
module Insert_only = Ivm_engine.Insert_only
module G = Ivm_dataflow.Graph

type source = (string * Rel.t) list

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let filters_for (l : Lower.t) rel =
  List.filter (fun (f : Lower.filter) -> f.Lower.rel = rel) l.Lower.filters

let passes fs tuple =
  List.for_all
    (fun (f : Lower.filter) ->
      Value.equal (Tuple.get tuple f.Lower.index) f.Lower.value)
    fs

(* The initial load of one atom: the table's current contents, filtered,
   under the atom's (renamed) schema — positions are unchanged by the
   renaming, so tuples carry over as-is. *)
let filtered_relation (l : Lower.t) (atom : Cq.atom) table =
  let fs = filters_for l atom.Cq.rel in
  let out = Rel.create (Cq.atom_schema atom) in
  Rel.iter (fun tp p -> if passes fs tp then Rel.add_entry out tp p) table;
  out

let list_fingerprint entries =
  List.fold_left
    (fun acc (tp, p) -> acc + (Tuple.hash tp lxor (p * 0x9E3779B9)) land max_int)
    0 entries
  land max_int

(* Fold Σ value·multiplicity out of the trailing (summed) column. *)
let fold_sum ~out_arity entries =
  let proj = Array.init out_arity (fun i -> i) in
  let tbl = Tuple.Tbl.create 64 in
  List.iter
    (fun (tp, mult) ->
      let key = Tuple.project tp proj in
      let v = Value.to_int (Tuple.get tp out_arity) in
      let cur = Option.value (Tuple.Tbl.find_opt tbl key) ~default:0 in
      Tuple.Tbl.replace tbl key (cur + (v * mult)))
    entries;
  Tuple.Tbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) tbl []

(* Read-side residue: a SUM view reports grouped sums, not the raw
   graded relation the engine maintains. *)
let wrap_reads (l : Lower.t) (m : M.t) =
  if not l.Lower.sum then m
  else begin
    let out_arity = List.length l.Lower.cq.Cq.free - 1 in
    let folded () = fold_sum ~out_arity (m.M.enumerate ()) in
    {
      m with
      M.enumerate = folded;
      M.output_count = (fun () -> List.length (folded ()));
      M.fingerprint = (fun () -> list_fingerprint (folded ()));
    }
  end

(* Write-side residue: drop static relations and filtered-out tuples,
   then translate each update for the inner engine. *)
let wrap_writes (l : Lower.t) ~static ~relations ~translate (m : M.t) =
  {
    m with
    M.relations;
    M.apply_batch =
      (fun batch ->
        let batch =
          List.filter_map
            (fun (u : int Update.t) ->
              if List.mem u.Update.rel static then None
              else if not (passes (filters_for l u.Update.rel) u.Update.tuple)
              then None
              else Some (translate u))
            batch
        in
        if batch <> [] then m.M.apply_batch batch);
  }

let dynamic_relations (l : Lower.t) static =
  List.filter (fun r -> not (List.mem r static)) (Cq.relation_names l.Lower.cq)

let initial_database (l : Lower.t) source =
  let db = Db.create () in
  let* () =
    List.fold_left
      (fun acc (atom : Cq.atom) ->
        let* () = acc in
        match List.assoc_opt atom.Cq.rel source with
        | None -> fail "no data for table %s" atom.Cq.rel
        | Some table ->
            Db.add_relation db atom.Cq.rel (filtered_relation l atom table);
            Ok ())
      (Ok ()) l.Lower.cq.Cq.atoms
  in
  Ok db

let flip_tuple tp = Tuple.of_list (List.rev (Tuple.to_list tp))

let slot_translate ~slots (u : int Update.t) =
  match List.assoc_opt u.Update.rel slots with
  | Some (slot, flipped) ->
      {
        u with
        Update.rel = slot;
        tuple = (if flipped then flip_tuple u.Update.tuple else u.Update.tuple);
      }
  | None -> invalid_arg ("unexpected relation " ^ u.Update.rel)

let initial_updates (l : Lower.t) source =
  List.concat_map
    (fun (atom : Cq.atom) ->
      match List.assoc_opt atom.Cq.rel source with
      | None -> []
      | Some table ->
          Rel.fold
            (fun tp p acc ->
              Update.make ~rel:atom.Cq.rel ~tuple:tp ~payload:p :: acc)
            table [])
    l.Lower.cq.Cq.atoms

let load outer l source =
  match outer.M.apply_batch (initial_updates l source) with
  | () -> Ok outer
  | exception Invalid_argument m -> fail "initial load: %s" m

(* --- dataflow lowering ------------------------------------------------- *)

(* Left-deep natural joins over the FROM atoms, greedily appending an
   atom that shares a column with what is joined so far; constant WHERE
   filters become filter nodes directly above their source. *)
let joined_atoms (l : Lower.t) g =
  let node_of_atom (atom : Cq.atom) =
    let n = G.source g ~rel:atom.Cq.rel ~schema:atom.Cq.vars in
    match filters_for l atom.Cq.rel with
    | [] -> n
    | fs ->
        let label =
          String.concat " & "
            (List.map
               (fun (f : Lower.filter) ->
                 Printf.sprintf "%s=%s"
                   (List.nth atom.Cq.vars f.Lower.index)
                   (Value.to_string f.Lower.value))
               fs)
        in
        G.filter g ~label (passes fs) n
  in
  match l.Lower.cq.Cq.atoms with
  | [] -> fail "dataflow: empty FROM"
  | a0 :: rest ->
      let rec go node pending =
        match pending with
        | [] -> Ok node
        | _ -> (
            let schema = G.node_schema node in
            match
              List.partition
                (fun (a : Cq.atom) ->
                  List.exists (fun v -> List.mem v schema) a.Cq.vars)
                pending
            with
            | next :: later, disconnected ->
                go (G.join g node (node_of_atom next)) (later @ disconnected)
            | [], _ ->
                fail
                  "the dataflow engine needs a connected join graph (no \
                   cartesian products)")
      in
      go (node_of_atom a0) rest

(* The operator tail above the join: distinct, extremum(s) or a windowed
   aggregate, grouped on the plain select columns. *)
let build_graph ~name (l : Lower.t) =
  let g = G.create () in
  let* base = joined_atoms l g in
  let group = l.Lower.out_vars in
  let col_index node c =
    match List.find_index (( = ) c) (G.node_schema node) with
    | Some i -> i
    | None -> invalid_arg ("dataflow: no column " ^ c)
  in
  let* tail =
    match (l.Lower.window, l.Lower.extrema) with
    | Some w, _ ->
        let lift =
          Option.map
            (fun c ->
              let i = col_index base c in
              fun tp -> Value.to_int (Tuple.get tp i))
            l.Lower.sum_var
        in
        Ok
          (G.window g ?lift ~time:w.Lower.time ~size:w.Lower.size ~group base)
    | None, (_ :: _ as extrema) -> (
        let enode (e : Lower.extremum) =
          G.extremum g
            ~dir:(if e.Lower.minimize then G.Asc else G.Desc)
            ~col:e.Lower.ecol ~group base
        in
        match extrema with
        | [ e ] -> Ok (enode e)
        | es ->
            (* Several extrema: rename each aggregate column to its
               user-facing name so the natural join below keys on the
               group columns alone, then join them left-deep — they all
               share the same (non-empty) group. *)
            let rename node new_col =
              G.map g ~label:("as " ^ new_col)
                ~schema:(group @ [ new_col ])
                (fun tp -> tp)
                node
            in
            let name_of (e : Lower.extremum) =
              Printf.sprintf "%s(%s)"
                (if e.Lower.minimize then "MIN" else "MAX")
                e.Lower.ecol
            in
            let nodes = List.map (fun e -> rename (enode e) (name_of e)) es in
            Ok (List.fold_left (G.join g) (List.hd nodes) (List.tl nodes)))
    | None, [] ->
        if l.Lower.distinct then Ok (G.distinct g (G.project g ~cols:group base))
        else fail "internal: %s is not a dataflow select" name
  in
  G.output g ~name tail;
  Ok g

let dag ~name (l : Lower.t) =
  let* g = build_graph ~name l in
  Ok (G.describe g)

let build ~name (l : Lower.t) (plan : Planner.plan) source =
  let missing =
    List.filter
      (fun r -> not (List.mem_assoc r source))
      (Cq.relation_names l.Lower.cq)
  in
  let* () =
    if missing <> [] then fail "no data for table %s" (List.hd missing) else Ok ()
  in
  let static = plan.Planner.static in
  let relations = dynamic_relations l static in
  let identity u = u in
  match plan.Planner.choice with
  | Planner.Dataflow ->
      let* g = build_graph ~name l in
      (* Seed the graph directly — static relations must reach the
         operators even though [wrap_writes] drops them from the update
         stream; filter nodes take care of the constant predicates. *)
      let* () =
        match G.apply g (initial_updates l source) with
        | () -> Ok ()
        | exception Invalid_argument m -> fail "initial load: %s" m
      in
      Ok
        (M.of_dataflow ~name g
        |> wrap_writes l ~static ~relations ~translate:identity)
  | Planner.Tree forest ->
      let* db = initial_database l source in
      let* tree =
        match View_tree.build l.Lower.cq forest db with
        | t -> Ok t
        | exception Invalid_argument m -> fail "view tree: %s" m
      in
      Ok
        (M.of_view_tree ~name l.Lower.cq tree
        |> wrap_writes l ~static ~relations ~translate:identity
        |> wrap_reads l)
  | Planner.Delta (kind, forest) ->
      let* db = initial_database l source in
      let* strat =
        match Strategy.create kind l.Lower.cq forest db with
        | s -> Ok s
        | exception Invalid_argument m -> fail "delta strategy: %s" m
      in
      Ok
        (M.of_strategy ~name strat
        |> wrap_writes l ~static ~relations ~translate:identity
        |> wrap_reads l)
  | Planner.Triangle { r; s; t } ->
      let module B = Triangle_batch.Delta in
      let eng = B.create () in
      let inner = M.of_triangle_batch ~name (module B) eng in
      let slots =
        [
          (r.Planner.rel, ("R", r.Planner.flipped));
          (s.Planner.rel, ("S", s.Planner.flipped));
          (t.Planner.rel, ("T", t.Planner.flipped));
        ]
      in
      let outer =
        wrap_writes l ~static ~relations ~translate:(slot_translate ~slots) inner
      in
      load outer l source
  | Planner.Monotone_path { r; s; t } ->
      let io = Insert_only.create () in
      let slots =
        [
          (r.Planner.rel, (`R, r.Planner.flipped));
          (s.Planner.rel, (`S, s.Planner.flipped));
          (t.Planner.rel, (`T, t.Planner.flipped));
        ]
      in
      let apply (u : int Update.t) =
        match List.assoc_opt u.Update.rel slots with
        | None -> invalid_arg ("unexpected relation " ^ u.Update.rel)
        | Some (slot, flipped) ->
            let x = Value.to_int (Tuple.get u.Update.tuple 0) in
            let y = Value.to_int (Tuple.get u.Update.tuple 1) in
            let x, y = if flipped then (y, x) else (x, y) in
            let m = u.Update.payload in
            (match slot with
            | `R -> Insert_only.insert_r io ~a:x ~b:y m
            | `S -> Insert_only.insert_s io ~b:x ~c:y m
            | `T -> Insert_only.insert_t io ~c:x ~d:y m)
      in
      let enumerate () = List.of_seq (Insert_only.enumerate io) in
      let inner =
        {
          M.name;
          relations;
          apply_batch = (fun batch -> List.iter apply batch);
          output_count = (fun () -> Insert_only.output_size io);
          fingerprint = (fun () -> list_fingerprint (enumerate ()));
          enumerate;
        }
      in
      let outer = wrap_writes l ~static ~relations ~translate:identity inner in
      load outer l source
