(** A hand-written lexer for the SQL subset of {!Parser}. Every token
    carries the character offset it starts at, so parse errors can point
    into the source text ("at offset 17, column 18"). Keywords are
    case-insensitive and recognized by the parser; the lexer only
    produces identifiers, literals and punctuation. *)

type token =
  | Ident of string  (** bare identifier; keyword recognition is the parser's *)
  | Int of int
  | Real of float
  | Str of string  (** ['single quoted'], [''] escaping a quote *)
  | Punct of char  (** one of [( ) , ; = * ? -] *)
  | Arrow  (** [->], used by FD clauses in CREATE TABLE *)
  | Eof

val token_name : token -> string
(** Human form for error messages ("identifier", "','", ...). *)

type t

val create : string -> t

val pos : t -> int
(** Offset of the current (peeked) token. *)

val peek : t -> token
(** Current token without consuming it.
    @raise Error on malformed input at the lexing frontier. *)

val next : t -> token
(** Consume and return the current token.
    @raise Error on malformed input. *)

exception Error of { msg : string; offset : int }

val describe : string -> int -> string
(** [describe text offset] renders a position as
    ["offset N (line L, column C)"] for error messages. *)
