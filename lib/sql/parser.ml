module L = Lexer
module Value = Ivm_data.Value

exception Fail of { msg : string; offset : int }

let fail offset fmt = Printf.ksprintf (fun msg -> raise (Fail { msg; offset })) fmt

type t = { lex : L.t; mutable params : int }

(* --- token helpers ---------------------------------------------------- *)

let keyword_of = function
  | L.Ident s -> Some (String.uppercase_ascii s)
  | _ -> None

let is_kw t kw = keyword_of (L.peek t.lex) = Some kw

let expect_kw t kw =
  if is_kw t kw then ignore (L.next t.lex)
  else
    fail (L.pos t.lex) "expected %s, got %s" kw (L.token_name (L.peek t.lex))

let expect_punct t c =
  match L.peek t.lex with
  | L.Punct p when p = c -> ignore (L.next t.lex)
  | tok -> fail (L.pos t.lex) "expected '%c', got %s" c (L.token_name tok)

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AND"; "CREATE"; "TABLE";
    "MATERIALIZED"; "VIEW"; "AS"; "WITH"; "INSERT"; "INTO"; "VALUES"; "DELETE";
    "ONLY"; "STATIC"; "COUNT"; "SUM"; "MIN"; "MAX"; "EXPLAIN"; "FD";
    "DISTINCT"; "WINDOW"; "TUMBLE"; "SIZE" ]

(* An identifier that is not a reserved keyword. *)
let ident t =
  match L.peek t.lex with
  | L.Ident s when not (List.mem (String.uppercase_ascii s) keywords) ->
      ignore (L.next t.lex);
      s
  | L.Ident s -> fail (L.pos t.lex) "reserved keyword %s cannot name things" s
  | tok -> fail (L.pos t.lex) "expected an identifier, got %s" (L.token_name tok)

let comma_list t elt =
  let rec go acc =
    let x = elt t in
    match L.peek t.lex with
    | L.Punct ',' ->
        ignore (L.next t.lex);
        go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

(* --- values ----------------------------------------------------------- *)

let value t : Value.t =
  let negated =
    match L.peek t.lex with
    | L.Punct '-' ->
        ignore (L.next t.lex);
        true
    | _ -> false
  in
  match L.peek t.lex with
  | L.Int n ->
      ignore (L.next t.lex);
      Value.Int (if negated then -n else n)
  | L.Real f ->
      ignore (L.next t.lex);
      Value.Real (if negated then -.f else f)
  | L.Str s when not negated ->
      ignore (L.next t.lex);
      Value.Str s
  | tok -> fail (L.pos t.lex) "expected a literal, got %s" (L.token_name tok)

(* --- select ----------------------------------------------------------- *)

let item t : Ast.item =
  match L.peek t.lex with
  | L.Punct '*' ->
      ignore (L.next t.lex);
      Ast.Star
  | L.Ident _ when is_kw t "COUNT" ->
      ignore (L.next t.lex);
      expect_punct t '(';
      expect_punct t '*';
      expect_punct t ')';
      Ast.Count
  | L.Ident _ when is_kw t "SUM" ->
      ignore (L.next t.lex);
      expect_punct t '(';
      let c = ident t in
      expect_punct t ')';
      Ast.Sum c
  | L.Ident _ when is_kw t "MIN" ->
      ignore (L.next t.lex);
      expect_punct t '(';
      let c = ident t in
      expect_punct t ')';
      Ast.Min c
  | L.Ident _ when is_kw t "MAX" ->
      ignore (L.next t.lex);
      expect_punct t '(';
      let c = ident t in
      expect_punct t ')';
      Ast.Max c
  | _ -> Ast.Column (ident t)

let pred t : Ast.pred =
  let col = ident t in
  expect_punct t '=';
  let rhs =
    match L.peek t.lex with
    | L.Punct '?' ->
        ignore (L.next t.lex);
        t.params <- t.params + 1;
        Ast.Param t.params
    | L.Int _ | L.Real _ | L.Str _ | L.Punct '-' -> Ast.Const (value t)
    | L.Ident _ -> Ast.Col (ident t)
    | tok ->
        fail (L.pos t.lex) "expected a literal, '?' or a column, got %s"
          (L.token_name tok)
  in
  { Ast.col; rhs }

let select t : Ast.select =
  expect_kw t "SELECT";
  let distinct =
    if is_kw t "DISTINCT" then begin
      ignore (L.next t.lex);
      true
    end
    else false
  in
  let items = comma_list t item in
  if List.mem Ast.Star items && items <> [ Ast.Star ] then
    fail (L.pos t.lex) "'*' cannot be combined with other select items";
  expect_kw t "FROM";
  let from = comma_list t ident in
  let where =
    if is_kw t "WHERE" then begin
      ignore (L.next t.lex);
      let rec go acc =
        let p = pred t in
        if is_kw t "AND" then begin
          ignore (L.next t.lex);
          go (p :: acc)
        end
        else List.rev (p :: acc)
      in
      go []
    end
    else []
  in
  let group_by =
    if is_kw t "GROUP" then begin
      ignore (L.next t.lex);
      expect_kw t "BY";
      comma_list t ident
    end
    else []
  in
  let window =
    if is_kw t "WINDOW" then begin
      ignore (L.next t.lex);
      expect_punct t '(';
      expect_kw t "TUMBLE";
      let wcol = ident t in
      expect_kw t "SIZE";
      let wsize =
        match L.peek t.lex with
        | L.Int n when n > 0 ->
            ignore (L.next t.lex);
            n
        | tok ->
            fail (L.pos t.lex) "expected a positive window size, got %s"
              (L.token_name tok)
      in
      expect_punct t ')';
      Some { Ast.wcol; wsize }
    end
    else None
  in
  { Ast.distinct; items; from; where; group_by; window }

(* --- statements ------------------------------------------------------- *)

let view_opt t : Ast.view_opt =
  if is_kw t "INSERT" then begin
    ignore (L.next t.lex);
    expect_kw t "ONLY";
    Ast.Insert_only
  end
  else if is_kw t "STATIC" then begin
    ignore (L.next t.lex);
    Ast.Static (ident t)
  end
  else
    fail (L.pos t.lex) "expected INSERT ONLY or STATIC, got %s"
      (L.token_name (L.peek t.lex))

let row t : Value.t list =
  expect_punct t '(';
  let vs = comma_list t value in
  expect_punct t ')';
  vs

(* CREATE TABLE body: a comma-separated mix of plain columns and FD
   clauses. An FD left-hand side runs to the '->'; the right-hand side
   is a single column, so a following ',' always starts the next body
   element. *)
let table_body t =
  expect_punct t '(';
  let cols = ref [] and fds = ref [] in
  let fd_clause () =
    let rec lhs acc =
      let c = ident t in
      match L.peek t.lex with
      | L.Punct ',' ->
          ignore (L.next t.lex);
          lhs (c :: acc)
      | L.Arrow ->
          ignore (L.next t.lex);
          List.rev (c :: acc)
      | tok ->
          fail (L.pos t.lex) "expected ',' or '->' in FD, got %s" (L.token_name tok)
    in
    let lhs = lhs [] in
    let rhs_col = ident t in
    fds := { Ast.lhs; rhs_col } :: !fds
  in
  let rec go () =
    (if is_kw t "FD" then begin
       ignore (L.next t.lex);
       fd_clause ()
     end
     else cols := ident t :: !cols);
    match L.peek t.lex with
    | L.Punct ',' ->
        ignore (L.next t.lex);
        go ()
    | _ -> ()
  in
  go ();
  expect_punct t ')';
  (List.rev !cols, List.rev !fds)

let rec stmt_p t : Ast.stmt =
  if is_kw t "EXPLAIN" then begin
    ignore (L.next t.lex);
    Ast.Explain (stmt_p t)
  end
  else if is_kw t "CREATE" then begin
    ignore (L.next t.lex);
    if is_kw t "TABLE" then begin
      ignore (L.next t.lex);
      let table = ident t in
      let cols, fds = table_body t in
      if cols = [] then fail (L.pos t.lex) "table %s has no columns" table;
      Ast.Create_table { table; cols; fds }
    end
    else begin
      expect_kw t "MATERIALIZED";
      expect_kw t "VIEW";
      let view = ident t in
      let opts =
        if is_kw t "WITH" then begin
          ignore (L.next t.lex);
          expect_punct t '(';
          let os = comma_list t view_opt in
          expect_punct t ')';
          os
        end
        else []
      in
      expect_kw t "AS";
      Ast.Create_view { view; opts; select = select t }
    end
  end
  else if is_kw t "INSERT" then begin
    ignore (L.next t.lex);
    expect_kw t "INTO";
    let table = ident t in
    expect_kw t "VALUES";
    Ast.Insert { table; rows = comma_list t row }
  end
  else if is_kw t "DELETE" then begin
    ignore (L.next t.lex);
    expect_kw t "FROM";
    let table = ident t in
    expect_kw t "VALUES";
    Ast.Delete { table; rows = comma_list t row }
  end
  else if is_kw t "SELECT" then Ast.Select (select t)
  else
    fail (L.pos t.lex)
      "expected SELECT, CREATE, INSERT, DELETE or EXPLAIN, got %s"
      (L.token_name (L.peek t.lex))

(* --- entry points ----------------------------------------------------- *)

let run text f =
  let t = { lex = L.create text; params = 0 } in
  match f t with
  | v -> Ok v
  | exception Fail { msg; offset } ->
      Error (Printf.sprintf "%s at %s" msg (L.describe text offset))
  | exception L.Error { msg; offset } ->
      Error (Printf.sprintf "%s at %s" msg (L.describe text offset))

let eat_semi t =
  match L.peek t.lex with
  | L.Punct ';' ->
      ignore (L.next t.lex);
      true
  | _ -> false

let at_eof t = L.peek t.lex = L.Eof

let stmt text =
  run text (fun t ->
      let s = stmt_p t in
      ignore (eat_semi t);
      if not (at_eof t) then
        fail (L.pos t.lex) "trailing input after statement: %s"
          (L.token_name (L.peek t.lex));
      s)

let script text =
  run text (fun t ->
      let rec go acc =
        if at_eof t then List.rev acc
        else begin
          let s = stmt_p t in
          let semi = eat_semi t in
          if (not semi) && not (at_eof t) then
            fail (L.pos t.lex) "expected ';' between statements, got %s"
              (L.token_name (L.peek t.lex));
          go (s :: acc)
        end
      in
      go [])
