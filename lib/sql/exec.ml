module Registry = Ivm_stream.Registry
module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Update = Ivm_data.Update
module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module M = Ivm_engine.Maintainable

type table = { cols : string list; fds : Ast.fd list }

type view = {
  select : Ast.select;
  lower : Lower.t;
  plan : Planner.plan;
}

type t = {
  reg : Registry.t;
  stats : (unit -> Planner.stats) option;
  mutable tables : (string * table) list;
  mutable views : (string * view) list;
}

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let create ?registry ?stats () =
  let reg =
    match registry with
    | Some r -> r
    | None -> Registry.create (Db.create ())
  in
  { reg; stats; tables = []; views = [] }

let registry t = t.reg

type result_set = { header : string list; rows : (Value.t list * int) list }

type outcome = Msg of string | Rows of result_set | Explained of string

let catalog t = List.map (fun (n, tb) -> (n, tb.cols)) t.tables

let fds_catalog t =
  List.map
    (fun (n, tb) ->
      (n, List.map (fun (fd : Ast.fd) -> Fd.make fd.Ast.lhs [ fd.Ast.rhs_col ]) tb.fds))
    t.tables

let source_of db (l : Lower.t) =
  List.map (fun r -> (r, Db.find db r)) (Cq.relation_names l.Lower.cq)

let compare_row (a, pa) (b, pb) =
  match List.compare Value.compare a b with 0 -> compare pa pb | c -> c

let sort_rows rows = List.sort compare_row rows

(* SQL's COUNT over an empty group set is 0, not "no row": a scalar
   aggregate always reports one row. Dataflow views (MIN/MAX, DISTINCT,
   WINDOW) report exactly what the graph materializes — an empty
   extremum or window is genuinely no row. *)
let normalize_scalar (l : Lower.t) rows =
  if Lower.needs_dataflow l then rows
  else
  let out_arity =
    List.length l.Lower.cq.Cq.free
    - List.length l.Lower.input
    - if l.Lower.sum then 1 else 0
  in
  let agg = List.length l.Lower.output_cols > out_arity in
  if agg && out_arity = 0 && rows = [] then [ ([], 0) ] else rows

let rows_of_entries (l : Lower.t) entries =
  List.map (fun (tp, p) -> (Tuple.to_list tp, p)) entries
  |> normalize_scalar l |> sort_rows

(* --- statement execution ---------------------------------------------- *)

let name_free t name =
  if List.mem_assoc name t.tables then fail "%s already names a table" name
  else if List.mem_assoc name t.views then fail "%s already names a view" name
  else Ok ()

let create_table t table cols fds =
  let* () = name_free t table in
  let* schema =
    match Schema.of_list cols with
    | s -> Ok s
    | exception Invalid_argument _ -> fail "duplicate column in table %s" table
  in
  let* () =
    List.fold_left
      (fun acc (fd : Ast.fd) ->
        let* () = acc in
        match
          List.find_opt (fun c -> not (List.mem c cols)) (fd.Ast.rhs_col :: fd.Ast.lhs)
        with
        | Some c -> fail "FD mentions unknown column %s" c
        | None -> Ok ())
      (Ok ()) fds
  in
  let* () = Registry.declare_table t.reg table schema in
  t.tables <- t.tables @ [ (table, { cols; fds }) ];
  Ok (Msg (Printf.sprintf "CREATE TABLE %s" table))

let sizes t =
  Registry.read t.reg (fun () ->
      List.map (fun (r, rel) -> (r, Rel.size rel)) (Db.relations (Registry.db t.reg)))

let plan_select t ~name ~opts select =
  let* lower, fds = Lower.select (catalog t) ~fds:(fds_catalog t) ~name select in
  let* plan =
    Planner.plan
      ?stats:(Option.map (fun f -> f ()) t.stats)
      ~sizes:(sizes t) ~fds ~opts lower
  in
  Ok (lower, plan)

let create_view t view opts select =
  let* () = name_free t view in
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        match o with
        | Ast.Static tb when not (List.mem tb select.Ast.from) ->
            fail "STATIC %s: not a FROM table of the view" tb
        | _ -> Ok ())
      (Ok ()) opts
  in
  let* lower, plan = plan_select t ~name:view ~opts select in
  (* Validate the build eagerly against the current state, so a bad view
     definition is an error here rather than a degraded registration. *)
  let* _probe =
    Registry.read t.reg (fun () ->
        Compile.build ~name:view lower plan (source_of (Registry.db t.reg) lower))
  in
  let* () =
    match
      Registry.register t.reg ~name:view (fun db ->
          match Compile.build ~name:view lower plan (source_of db lower) with
          | Ok m -> m
          | Error e -> failwith e)
    with
    | () -> Ok ()
    | exception Invalid_argument m -> fail "%s" m
  in
  t.views <- t.views @ [ (view, { select; lower; plan }) ];
  Ok
    (Msg
       (Printf.sprintf "CREATE MATERIALIZED VIEW %s (engine: %s)" view
          (Planner.engine_name plan)))

let mutate t ~table ~rows ~payload ~verb =
  let* tb =
    match List.assoc_opt table t.tables with
    | Some tb -> Ok tb
    | None -> fail "unknown table %s" table
  in
  let arity = List.length tb.cols in
  let* updates =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        if List.length row <> arity then
          fail "row arity %d does not match table %s(%d columns)"
            (List.length row) table arity
        else
          Ok
            (Update.make ~rel:table ~tuple:(Tuple.of_list row) ~payload :: acc))
      (Ok []) rows
  in
  Registry.apply_batch t.reg (List.rev updates);
  Ok (Msg (Printf.sprintf "%s %d row(s) %s %s" verb (List.length rows)
             (if verb = "INSERT" then "into" else "from") table))

(* A SELECT textually matching a created view (modulo parameter values)
   is a CQAP access-pattern lookup against the maintained view. *)
let matching_view t select =
  List.find_opt (fun (_, v) -> Ast.equal_select v.select select) t.views

let lookup_in_view t name (v : view) params =
  let l = v.lower in
  let* bindings =
    List.fold_left
      (fun acc (i, var) ->
        let* acc = acc in
        match List.nth_opt params (i - 1) with
        | Some value -> Ok ((var, value) :: acc)
        | None -> fail "parameter ?%d is unbound (give it with --param)" i)
      (Ok []) l.Lower.param_vars
  in
  let entries =
    Registry.read t.reg (fun () -> (Registry.find t.reg name).M.enumerate ())
  in
  let free = l.Lower.cq.Cq.free in
  let pos var =
    match List.find_index (( = ) var) free with Some i -> i | None -> 0
  in
  (* Dataflow views carry no '?' parameters and their tuples are already
     exactly the user-visible columns — serve them untruncated. *)
  let out_arity =
    if Lower.needs_dataflow l then max_int
    else List.length free - List.length l.Lower.input
  in
  let keep tp =
    List.for_all
      (fun (var, value) -> Value.equal (Tuple.get tp (pos var)) value)
      bindings
  in
  let rows =
    List.filter_map
      (fun (tp, p) ->
        if keep tp then
          Some (List.filteri (fun i _ -> i < out_arity) (Tuple.to_list tp), p)
        else None)
      entries
    |> normalize_scalar l |> sort_rows
  in
  Ok (Rows { header = l.Lower.output_cols; rows })

let one_shot t params select =
  let* select = Lower.subst_params params select in
  let* lower, plan = plan_select t ~name:"adhoc" ~opts:[] select in
  let* entries =
    Registry.read t.reg (fun () ->
        let* m =
          Compile.build ~name:"adhoc" lower plan
            (source_of (Registry.db t.reg) lower)
        in
        Ok (m.M.enumerate ()))
  in
  Ok (Rows { header = lower.Lower.output_cols; rows = rows_of_entries lower entries })

let run_select t params select =
  match matching_view t select with
  | Some (name, v) -> lookup_in_view t name v params
  | None -> one_shot t params select

(* A dataflow plan's EXPLAIN also shows the operator DAG the view would
   run on — one line per node in topological order. *)
let dag_report name (lower : Lower.t) (plan : Planner.plan) =
  match plan.Planner.choice with
  | Planner.Dataflow ->
      let* lines = Compile.dag ~name lower in
      Ok ("\noperator DAG:\n  " ^ String.concat "\n  " lines)
  | _ -> Ok ""

let rec explain t stmt =
  match stmt with
  | Ast.Explain inner -> explain t inner
  | Ast.Create_view { view; opts; select } ->
      let* lower, plan = plan_select t ~name:view ~opts select in
      let* dag = dag_report view lower plan in
      Ok
        (Explained
           (Printf.sprintf "view %s\n%s%s" view (Planner.explain plan) dag))
  | Ast.Select select ->
      let* lower, plan = plan_select t ~name:"adhoc" ~opts:[] select in
      let* dag = dag_report "adhoc" lower plan in
      Ok (Explained (Planner.explain plan ^ dag))
  | Ast.Create_table _ | Ast.Insert _ | Ast.Delete _ ->
      fail "EXPLAIN supports SELECT and CREATE MATERIALIZED VIEW"

let exec t ?(params = []) stmt =
  match stmt with
  | Ast.Create_table { table; cols; fds } -> create_table t table cols fds
  | Ast.Create_view { view; opts; select } -> create_view t view opts select
  | Ast.Insert { table; rows } -> mutate t ~table ~rows ~payload:1 ~verb:"INSERT"
  | Ast.Delete { table; rows } ->
      mutate t ~table ~rows ~payload:(-1) ~verb:"DELETE"
  | Ast.Select select -> run_select t params select
  | Ast.Explain inner -> explain t inner

let exec_text t ?(params = []) text =
  let* stmts = Parser.script text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | s :: tl -> (
        match exec t ~params s with
        | Ok o -> go (i + 1) (o :: acc) tl
        | Error e -> fail "statement %d: %s" i e)
  in
  go 1 [] stmts

let view_names t = List.map fst t.views

let view_entries t name =
  match List.assoc_opt name t.views with
  | None -> fail "unknown view %s" name
  | Some _ ->
      Ok (Registry.read t.reg (fun () -> (Registry.find t.reg name).M.enumerate ()))

let explain_view t name =
  match List.assoc_opt name t.views with
  | None -> fail "unknown view %s" name
  | Some v ->
      Ok (Printf.sprintf "view %s\n%s" name (Planner.explain v.plan))

let render = function
  | Msg s | Explained s -> s
  | Rows { header; rows } ->
      let b = Buffer.create 128 in
      Buffer.add_string b (String.concat " | " header);
      let payload_is_column =
        List.length header > (match rows with (r, _) :: _ -> List.length r | [] -> max_int)
      in
      List.iter
        (fun (vals, p) ->
          Buffer.add_char b '\n';
          let cells = List.map Value.to_string vals in
          let cells =
            if payload_is_column then cells @ [ string_of_int p ]
            else if p <> 1 then cells @ [ Printf.sprintf "x%d" p ]
            else cells
          in
          Buffer.add_string b (String.concat " | " cells))
        rows;
      Buffer.contents b
