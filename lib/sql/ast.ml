module Value = Ivm_data.Value

type rhs = Const of Value.t | Param of int | Col of string

type pred = { col : string; rhs : rhs }

type item = Star | Column of string | Count | Sum of string | Min of string | Max of string

type window = { wcol : string; wsize : int }

type select = {
  distinct : bool;
  items : item list;
  from : string list;
  where : pred list;
  group_by : string list;
  window : window option;
}

type view_opt = Insert_only | Static of string

type fd = { lhs : string list; rhs_col : string }

type stmt =
  | Create_table of { table : string; cols : string list; fds : fd list }
  | Create_view of { view : string; opts : view_opt list; select : select }
  | Insert of { table : string; rows : Value.t list list }
  | Delete of { table : string; rows : Value.t list list }
  | Select of select
  | Explain of stmt

(* --- printing --------------------------------------------------------- *)

let print_value = function
  | Value.Int n -> string_of_int n
  | Value.Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | Value.Real f ->
      (* The lexer only reads [digits.digits]: render without exponent
         and with a forced decimal point so every printed real re-lexes
         as a real. *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s 'e' || String.contains s 'n' (* nan/inf *) then
        Printf.sprintf "%.1f" f
      else if String.contains s '.' then s
      else s ^ ".0"

let print_item = function
  | Star -> "*"
  | Column c -> c
  | Count -> "COUNT(*)"
  | Sum c -> Printf.sprintf "SUM(%s)" c
  | Min c -> Printf.sprintf "MIN(%s)" c
  | Max c -> Printf.sprintf "MAX(%s)" c

let print_rhs = function
  | Const v -> print_value v
  | Param _ -> "?"
  | Col c -> c

let print_pred (p : pred) = Printf.sprintf "%s = %s" p.col (print_rhs p.rhs)

let print_select (s : select) =
  let b = Buffer.create 64 in
  Buffer.add_string b "SELECT ";
  if s.distinct then Buffer.add_string b "DISTINCT ";
  Buffer.add_string b (String.concat ", " (List.map print_item s.items));
  Buffer.add_string b " FROM ";
  Buffer.add_string b (String.concat ", " s.from);
  if s.where <> [] then begin
    Buffer.add_string b " WHERE ";
    Buffer.add_string b (String.concat " AND " (List.map print_pred s.where))
  end;
  if s.group_by <> [] then begin
    Buffer.add_string b " GROUP BY ";
    Buffer.add_string b (String.concat ", " s.group_by)
  end;
  (match s.window with
  | Some w ->
      Buffer.add_string b
        (Printf.sprintf " WINDOW (TUMBLE %s SIZE %d)" w.wcol w.wsize)
  | None -> ());
  Buffer.contents b

let print_view_opt = function
  | Insert_only -> "INSERT ONLY"
  | Static t -> "STATIC " ^ t

let print_fd (fd : fd) =
  Printf.sprintf "FD %s -> %s" (String.concat ", " fd.lhs) fd.rhs_col

let rec print = function
  | Create_table { table; cols; fds } ->
      Printf.sprintf "CREATE TABLE %s (%s)" table
        (String.concat ", " (cols @ List.map print_fd fds))
  | Create_view { view; opts; select } ->
      let with_clause =
        if opts = [] then ""
        else Printf.sprintf " WITH (%s)" (String.concat ", " (List.map print_view_opt opts))
      in
      Printf.sprintf "CREATE MATERIALIZED VIEW %s%s AS %s" view with_clause
        (print_select select)
  | Insert { table; rows } ->
      Printf.sprintf "INSERT INTO %s VALUES %s" table (print_rows rows)
  | Delete { table; rows } ->
      Printf.sprintf "DELETE FROM %s VALUES %s" table (print_rows rows)
  | Select s -> print_select s
  | Explain st -> "EXPLAIN " ^ print st

and print_rows rows =
  String.concat ", "
    (List.map
       (fun row -> Printf.sprintf "(%s)" (String.concat ", " (List.map print_value row)))
       rows)

(* --- equality --------------------------------------------------------- *)

let equal_rhs a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Param i, Param j -> i = j
  | Col x, Col y -> x = y
  | (Const _ | Param _ | Col _), _ -> false

let equal_pred (a : pred) (b : pred) = a.col = b.col && equal_rhs a.rhs b.rhs

let equal_list eq a b = List.length a = List.length b && List.for_all2 eq a b

let equal_select (a : select) (b : select) =
  a.distinct = b.distinct
  && equal_list ( = ) a.items b.items
  && a.from = b.from
  && equal_list equal_pred a.where b.where
  && a.group_by = b.group_by
  && a.window = b.window

let equal_rows = equal_list (equal_list Value.equal)

let rec equal a b =
  match (a, b) with
  | Create_table a, Create_table b ->
      a.table = b.table && a.cols = b.cols && a.fds = b.fds
  | Create_view a, Create_view b ->
      a.view = b.view && a.opts = b.opts && equal_select a.select b.select
  | Insert a, Insert b -> a.table = b.table && equal_rows a.rows b.rows
  | Delete a, Delete b -> a.table = b.table && equal_rows a.rows b.rows
  | Select a, Select b -> equal_select a b
  | Explain a, Explain b -> equal a b
  | ( ( Create_table _ | Create_view _ | Insert _ | Delete _ | Select _
      | Explain _ ),
      _ ) ->
      false
