(** A SQL session over a {!Ivm_stream.Registry}: the catalog (tables,
    declared FDs, created views) plus the execution of statements. The
    registry owns the authoritative base database and keeps every
    SQL-created view current off the shared update stream — the same
    machinery the TCP server already uses, so a session can run
    standalone (CLI) or be grafted onto a serving registry (the wire's
    [CreateView]/[Explain] ops). *)

module Registry = Ivm_stream.Registry
module Value = Ivm_data.Value

type t

val create :
  ?registry:Registry.t -> ?stats:(unit -> Planner.stats) -> unit -> t
(** Without [registry], a private one over an empty database. [stats]
    supplies the observed read/write mix at planning time (e.g. derived
    from {!Ivm_stream.Metrics} op counters). *)

val registry : t -> Registry.t

type result_set = {
  header : string list;
  rows : (Value.t list * int) list;
      (** (output tuple, payload): multiplicity for plain selects, the
          aggregate value for COUNT/SUM. Sorted. *)
}

type outcome =
  | Msg of string  (** DDL/DML acknowledgements *)
  | Rows of result_set
  | Explained of string

val exec :
  t -> ?params:Value.t list -> Ast.stmt -> (outcome, string) result
(** Execute one statement. A [SELECT] matching a created view's shape
    (same text modulo parameter values) is answered from the maintained
    view — the CQAP access-pattern lookup; any other [SELECT] runs one
    shot against the current base state. *)

val exec_text :
  t -> ?params:Value.t list -> string -> (outcome list, string) result
(** Parse and execute a whole [;]-separated script, stopping at the
    first error. *)

val view_names : t -> string list

val view_entries :
  t -> string -> ((Ivm_data.Tuple.t * int) list, string) result
(** The raw maintained output of a SQL-created view (epoch-consistent
    read) — what tests compare against a directly-built engine. *)

val explain_view : t -> string -> (string, string) result
(** The EXPLAIN report of an already-created view. *)

val render : outcome -> string
