-- Dataflow operator graphs: the SQL features that cannot be maintained
-- in the ring — MIN/MAX, DISTINCT and windowed aggregates — compile
-- onto a delta-propagating operator DAG (lib/dataflow). Run with:
--
--   dune exec bin/ivm_cli.exe -- sql examples/sql/windows.sql
--
-- EXPLAIN on these views appends the operator DAG itself, one line per
-- node, so the lowering is auditable.

CREATE TABLE Readings (sensor, t, temp);

-- Grouped extrema. Deleting the currently served minimum forces the
-- engine's re-scan fallback over the group's ordered value multiset —
-- an output-only state could never answer it.
CREATE MATERIALIZED VIEW extremes AS
  SELECT sensor, MIN(temp), MAX(temp) FROM Readings GROUP BY sensor;
EXPLAIN SELECT sensor, MIN(temp), MAX(temp) FROM Readings GROUP BY sensor;

-- Tumbling-window SUM over the integer event-time column t: one pane
-- per 10 ticks, keyed (w_t, sensor). The watermark is the largest t
-- seen on inserts; once it passes a pane's end, the pane's rows are
-- retracted from the output and late arrivals for it are dropped.
CREATE MATERIALIZED VIEW temp_by_decade AS
  SELECT sensor, SUM(temp) FROM Readings GROUP BY sensor
  WINDOW (TUMBLE t SIZE 10);
EXPLAIN SELECT sensor, SUM(temp) FROM Readings GROUP BY sensor
  WINDOW (TUMBLE t SIZE 10);

INSERT INTO Readings VALUES (1, 1, 20), (1, 4, 23), (1, 8, 19), (2, 3, 30);

-- Served from the maintained views.
SELECT sensor, MIN(temp), MAX(temp) FROM Readings GROUP BY sensor;

-- Delete sensor 1's current minimum (19): its MIN re-scans to 20.
DELETE FROM Readings VALUES (1, 8, 19);
SELECT sensor, MIN(temp), MAX(temp) FROM Readings GROUP BY sensor;

-- Advance event time past the first pane: t=14 moves the watermark to
-- 14, retracting pane [0, 10) — only the live pane remains.
INSERT INTO Readings VALUES (1, 14, 25);
SELECT sensor, SUM(temp) FROM Readings GROUP BY sensor
  WINDOW (TUMBLE t SIZE 10);

-- DISTINCT over a join, also on the operator graph: duplicates in the
-- support collapse to presence, and only zero crossings retract.
CREATE TABLE Assignments (worker, task);
CREATE TABLE Tasks (task, room);
CREATE MATERIALIZED VIEW busy_rooms AS
  SELECT DISTINCT room FROM Assignments, Tasks;
INSERT INTO Tasks VALUES (100, 'lab'), (101, 'lab'), (102, 'office');
INSERT INTO Assignments VALUES (7, 100), (7, 101), (8, 102);
DELETE FROM Assignments VALUES (7, 100);
SELECT DISTINCT room FROM Assignments, Tasks;
