-- SQL quickstart for the IVM toolbox. Run with:
--
--   dune exec bin/ivm_cli.exe -- sql examples/sql/quickstart.sql
--
-- Statements end with ';'. Tables are bags of rows; joins are natural
-- (tables sharing a column name join on it). CREATE MATERIALIZED VIEW
-- hands the query to the cost-based planner, which classifies it along
-- the paper's taxonomy (hierarchical / q-hierarchical / free-connex /
-- static-dynamic) and compiles it onto the best maintenance engine;
-- EXPLAIN shows the decision and the facts behind it.

CREATE TABLE Sales (store, item, qty);
CREATE TABLE Stores (store, zip);
CREATE TABLE Items (item, cat);

-- q-hierarchical: constant-time updates with constant-delay
-- enumeration, maintained by the eager delta-query strategy.
CREATE MATERIALIZED VIEW store_items AS
  SELECT store, zip, item FROM Sales, Stores;
EXPLAIN SELECT store, zip, item FROM Sales, Stores;

-- The snowflake join below is not hierarchical, so constant-time
-- maintenance is impossible; the planner falls back to the factorized
-- view tree.
CREATE MATERIALIZED VIEW zip_cats AS
  SELECT zip, cat FROM Sales, Stores, Items;
EXPLAIN SELECT zip, cat FROM Sales, Stores, Items;

-- A group-by aggregate, maintained in the ring.
CREATE MATERIALIZED VIEW qty_by_cat AS
  SELECT cat, SUM(qty) FROM Sales, Items GROUP BY cat;

INSERT INTO Stores VALUES (1, 94107), (2, 10001);
INSERT INTO Items VALUES (10, 'espresso'), (11, 'filter'), (12, 'decaf');
INSERT INTO Sales VALUES (1, 10, 3), (1, 11, 2), (2, 10, 1), (2, 12, 5);
DELETE FROM Sales VALUES (2, 12, 5);

-- Both selects below match a maintained view and answer from it.
SELECT store, zip, item FROM Sales, Stores;
SELECT cat, SUM(qty) FROM Sales, Items GROUP BY cat;

-- The triangle count compiles onto the IVMeps batch kernel.
CREATE TABLE R (a, b);
CREATE TABLE S (b, c);
CREATE TABLE T (c, a);
CREATE MATERIALIZED VIEW triangles AS SELECT COUNT(*) FROM R, S, T;
INSERT INTO R VALUES (1, 2);
INSERT INTO S VALUES (2, 3);
INSERT INTO T VALUES (3, 1);
SELECT COUNT(*) FROM R, S, T;
EXPLAIN SELECT COUNT(*) FROM R, S, T;
