#!/usr/bin/env python3
"""Plot the bench-mixed macro-benchmark results.

Reads one or more BENCH_mixed.json files (as emitted by
`ivm_cli bench-mixed`) and renders:

  1. throughput vs view count (the "curve" array, one line per input
     file — e.g. single server vs 2-shard cluster),
  2. per-tenant read/write p99 latency grouped by tenant kind.

Matplotlib is optional: without it the script prints the same data as
aligned text tables, so CI can archive the summary without a display
stack.

Usage:
  python3 bench/plots/plot_mixed.py BENCH_mixed.json [more.json ...]
  python3 bench/plots/plot_mixed.py --out mixed.png BENCH_mixed.json
"""

import argparse
import json
import os
import sys
from collections import defaultdict


def load(path):
    with open(path) as f:
        d = json.load(f)
    if d.get("bench") != "mixed":
        raise SystemExit(f"{path}: not a bench-mixed result")
    return d


def label(d):
    shards = d.get("shards", 0)
    return f"{shards}-shard cluster" if shards >= 2 else "single server"


def kind_latency(d):
    """kind -> (median of per-tenant write p99, median of read p99)."""
    per = defaultdict(lambda: ([], []))
    for t in d["tenants"]:
        w, r = per[t["kind"]]
        if t["writes"]["count"]:
            w.append(t["writes"]["p99_ms"])
        if t["reads"]["count"]:
            r.append(t["reads"]["p99_ms"])
    med = lambda xs: sorted(xs)[len(xs) // 2] if xs else 0.0
    return {k: (med(w), med(r)) for k, (w, r) in sorted(per.items())}


def text_report(runs):
    for path, d in runs:
        print(f"== {path} ({label(d)}) ==")
        print(f"  views {d['views']}  workers {d['workers']}  "
              f"throughput {d['throughput_ops_s']:.0f} ops/s  "
              f"conservation samples {d['conservation_samples']}  "
              f"oracle views {d['oracle_views']}")
        print("  throughput vs view count:")
        for pt in d["curve"]:
            print(f"    {pt['views']:5d} views  {pt['throughput_ops_s']:10.0f} ops/s")
        print("  per-kind p99 latency (median over tenants, ms):")
        print(f"    {'kind':<10} {'write p99':>10} {'read p99':>10}")
        for kind, (w, r) in kind_latency(d).items():
            print(f"    {kind:<10} {w:>10.3f} {r:>10.3f}")
        print()


def plot(runs, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(11, 4.2))

    for path, d in runs:
        pts = sorted((p["views"], p["throughput_ops_s"]) for p in d["curve"])
        ax1.plot([v for v, _ in pts], [t for _, t in pts], marker="o",
                 label=f"{label(d)} ({os.path.basename(path)})")
    ax1.set_xlabel("registered views")
    ax1.set_ylabel("throughput (ops/s)")
    ax1.set_title("throughput vs view count")
    ax1.grid(True, alpha=0.3)
    ax1.legend(fontsize=8)

    # Per-kind p99 bars for the first run only (the others would overlap).
    _, d = runs[0]
    kinds = kind_latency(d)
    xs = range(len(kinds))
    width = 0.38
    ax2.bar([x - width / 2 for x in xs], [w for w, _ in kinds.values()],
            width, label="write p99")
    ax2.bar([x + width / 2 for x in xs], [r for _, r in kinds.values()],
            width, label="read p99")
    ax2.set_xticks(list(xs))
    ax2.set_xticklabels(list(kinds.keys()), rotation=20)
    ax2.set_ylabel("latency (ms)")
    ax2.set_title(f"per-kind p99 ({label(d)}, {d['views']} views)")
    ax2.grid(True, axis="y", alpha=0.3)
    ax2.legend(fontsize=8)

    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_mixed.json result files")
    ap.add_argument("--out", default="BENCH_mixed.png", help="output image path")
    args = ap.parse_args()

    runs = [(p, load(p)) for p in args.files]
    text_report(runs)
    try:
        plot(runs, args.out)
    except ImportError:
        print("matplotlib unavailable; text report only", file=sys.stderr)


if __name__ == "__main__":
    main()
