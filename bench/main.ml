(* The experiment harness: one experiment per table/figure of the paper
   (see DESIGN.md section 3 and EXPERIMENTS.md for paper-vs-measured).

   Macro experiments (throughput under update streams) use wall-clock
   loops over generated workloads; the `micro` experiment additionally
   benchmarks each engine's core operation with one Bechamel Test.make
   per table, so per-operation latencies are measured with proper
   statistics.

   Run all:        dune exec bench/main.exe
   Run one:        dune exec bench/main.exe -- --only fig4
   Smaller sizes:  dune exec bench/main.exe -- --fast *)

module U = Bench_util
module D = Ivm_data
module Q = Ivm_query
module E = Ivm_engine
module Eps = Ivm_eps
module W = Ivm_workload
module L = Ivm_lowerbound
module Rel = D.Relation.Z
module Tri = E.Triangle

let fast = ref false
let tup = D.Tuple.of_ints

(* Filled by the stream experiment: minor words allocated per update in
   the no-wal config — the metric the [--check-alloc] CI gate compares
   against its checked-in baseline. *)
let stream_minor_words_per_update : float option ref = ref None

(* ---------------------------------------------------------------- *)
(* fig2: the worked example of Fig. 2 -- exact payload verification. *)
(* ---------------------------------------------------------------- *)

let fig2 () =
  U.section "fig2: triangle query worked example (Fig. 2)";
  let eng = Tri.Delta.create () in
  Tri.Delta.update eng Tri.R ~a:1 ~b:1 1;
  Tri.Delta.update eng Tri.R ~a:2 ~b:1 3;
  Tri.Delta.update eng Tri.S ~a:1 ~b:1 2;
  Tri.Delta.update eng Tri.S ~a:1 ~b:2 4;
  Tri.Delta.update eng Tri.T ~a:1 ~b:1 1;
  Tri.Delta.update eng Tri.T ~a:2 ~b:2 2;
  let initial = Tri.Delta.count eng in
  Tri.Delta.update eng Tri.R ~a:2 ~b:1 (-2);
  let after = Tri.Delta.count eng in
  U.table
    ~header:[ "quantity"; "paper"; "measured" ]
    [
      [ "Q on the Fig. 2 database"; "26"; string_of_int initial ];
      [ "Q after deleting 2 copies of R(a2,b1)"; "10"; string_of_int after ];
    ];
  assert (initial = 26 && after = 10)

(* ----------------------------------------------------------------- *)
(* triangle-scaling: single-tuple update cost of the Sec. 3 engines.  *)
(* ----------------------------------------------------------------- *)

type tri_engine = {
  ename : string;
  eupdate : Tri.relation -> int -> int -> int -> unit;
  ecount : unit -> int;
}

let make_tri_engines () =
  let naive = Tri.Naive.create () in
  let delta = Tri.Delta.create () in
  let one = Tri.One_view.create () in
  let eps = Eps.Triangle_count.create ~epsilon:0.5 () in
  [
    ({ ename = "recompute";
       eupdate = (fun r a b p -> Tri.Naive.update naive r ~a ~b p);
       ecount = (fun () -> Tri.Naive.count naive) }, 2);
    ({ ename = "delta";
       eupdate = (fun r a b p -> Tri.Delta.update delta r ~a ~b p);
       ecount = (fun () -> Tri.Delta.count delta) }, 200);
    ({ ename = "one-view";
       eupdate = (fun r a b p -> Tri.One_view.update one r ~a ~b p);
       ecount = (fun () -> Tri.One_view.count one) }, 200);
    ({ ename = "ivm-eps(.5)";
       eupdate = (fun r a b p -> Eps.Triangle_count.update eps r ~a ~b p);
       ecount = (fun () -> Eps.Triangle_count.count eps) }, 200);
  ]

(* One IVM step per the contract of Fig. 1: apply the update, then make
   the count current (constant-time read for all engines but recompute,
   which pays its refresh here). *)
let tri_step e rel a b p =
  e.eupdate rel a b p;
  ignore (e.ecount ())

(* Instance A -- the two-hub database, delta's worst case (Sec. 3.1):
   S(1,c) and T(c,1) for c <= m, so the delta of R(1,1) intersects two
   Theta(N) adjacency lists. The skew-aware engines answer it with one
   lookup into V_ST (Sec. 3.2 / 3.3). *)
let two_hub m e =
  for c = 1 to m do
    e.eupdate Tri.S 1 c 1;
    e.eupdate Tri.T c 1 1
  done;
  ignore (e.ecount ())

let two_hub_probe e =
  tri_step e Tri.R 1 1 1;
  tri_step e Tri.R 1 1 (-1)

(* Instance B -- the dense OuMv-style matrix with vector updates
   (Sec. 3.4): S is an n x n matrix, R and T are vectors anchored at a
   constant node. Every engine needs Theta(sqrt N) per vector flip here;
   the conjecture says none can do asymptotically better. *)
let oumv_matrix n e =
  let anchor = n + 1 in
  for i = 1 to n do
    for j = 1 to n do
      if (i + (3 * j)) mod 4 < 2 then e.eupdate Tri.S i j 1
    done;
    e.eupdate Tri.R anchor i 1;
    e.eupdate Tri.T i anchor 1
  done;
  ignore (e.ecount ())

let oumv_probe n k e =
  let anchor = n + 1 in
  let i = 1 + (k mod n) in
  tri_step e Tri.R anchor i (-1);
  tri_step e Tri.T i anchor (-1);
  tri_step e Tri.R anchor i 1;
  tri_step e Tri.T i anchor 1

let scaling_table ~title ~expect ~sizes ~dbsize ~build ~probe ~probe_updates =
  Printf.printf "\n-- %s --\n" title;
  let results = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (e, reps) ->
          build m e;
          let t = U.per_call reps (fun k -> probe m k e) /. float_of_int probe_updates in
          Hashtbl.replace results (e.ename, m) t)
        (make_tri_engines ()))
    sizes;
  let names = List.map (fun (e, _) -> e.ename) (make_tri_engines ()) in
  let rows =
    List.map
      (fun name ->
        let times = List.map (fun m -> Hashtbl.find results (name, m)) sizes in
        let exp =
          U.fitted_exponent
            (List.map2 (fun m t -> (float_of_int (dbsize m), t)) sizes times)
        in
        (name :: List.map U.us times) @ [ Printf.sprintf "%.2f" exp ])
      names
  in
  U.table
    ~header:
      (("engine"
       :: List.map (fun m -> Printf.sprintf "us @N=%d" (dbsize m)) sizes)
      @ [ "exponent vs N" ])
    rows;
  Printf.printf "%s\n" expect

let triangle_scaling () =
  U.section
    "sec3: single-tuple update time for the triangle count\n\
     (delta O(N) | one materialized view O(1)/O(N) | IVM^eps O(sqrt N) worst-case optimal)";
  let hub_sizes = if !fast then [ 4_000; 8_000; 16_000 ] else [ 8_000; 16_000; 32_000; 64_000 ] in
  scaling_table ~title:"two-hub instance: updates to R hit two Theta(N) adjacency lists"
    ~expect:
      "expected: recompute/delta exponent >=1 (linear work; cache pressure pushes\n\
       the fit above 1 at the largest sizes); one-view and ivm-eps ~0\n\
       (one lookup into the skew-aware view, Sec. 3.2/3.3)."
    ~sizes:hub_sizes
    ~dbsize:(fun m -> (2 * m) + 1)
    ~build:two_hub
    ~probe:(fun _ _ e -> two_hub_probe e)
    ~probe_updates:2;
  let mat_sizes = if !fast then [ 24; 36; 54 ] else [ 32; 48; 72; 108 ] in
  scaling_table
    ~title:"dense OuMv matrix: vector flips, the Thm. 3.4 hard instance"
    ~expect:
      "expected: every engine ~0.5 vs N = n^2 (Theta(n) per flip; recompute ~1);\n\
       the OuMv conjecture says no engine can be asymptotically faster, and\n\
       IVM^eps meets the bound -- worst-case optimal (end of Sec. 3.4)."
    ~sizes:mat_sizes
    ~dbsize:(fun n -> (n * n / 2) + (2 * n))
    ~build:oumv_matrix
    ~probe:(fun n k e -> oumv_probe n k e)
    ~probe_updates:4

(* -------------------------------------------------------- *)
(* fig4: the four strategies on the Retailer workload.       *)
(* -------------------------------------------------------- *)

let fig4 () =
  U.section
    "fig4: throughput of eager/lazy x list/fact on the Retailer join\n\
     (batches of single-tuple updates, 2%% dimension churn; full enumeration\n\
     every INTVAL batches)";
  let spec =
    if !fast then
      { W.Retailer.locations = 30; zips_per_location = 4; dates = 30; skus = 1000; skew = 1.0 }
    else
      { W.Retailer.locations = 60; zips_per_location = 5; dates = 60; skus = 3000; skew = 1.0 }
  in
  let batches = if !fast then 40 else 100 in
  let batch_size = 500 in
  let intervals = if !fast then [ 5; 20; 40 ] else [ 10; 50; 100 ] in
  let budget = 60. in
  let strategies =
    [
      E.Strategy.Eager_list (* DBToaster-style *);
      E.Strategy.Eager_fact (* F-IVM *);
      E.Strategy.Lazy_list (* delta queries *);
      E.Strategy.Lazy_fact (* hybrid *);
    ]
  in
  let rows =
    List.map
      (fun kind ->
        E.Strategy.kind_name kind
        :: List.map
             (fun intval ->
               let gen = W.Retailer.create spec in
               let db = W.Retailer.initial_database gen in
               let engine = E.Strategy.create kind W.Retailer.query (W.Retailer.order ()) db in
               let t0 = U.now () in
               let timeout = ref false in
               (try
                  for b = 1 to batches do
                    List.iter (E.Strategy.apply engine)
                      (W.Retailer.next_mixed_batch gen ~size:batch_size ~churn:0.02);
                    if b mod intval = 0 then ignore (E.Strategy.count_output engine);
                    if U.now () -. t0 > budget then raise Exit
                  done
                with Exit -> timeout := true);
               if !timeout then "DNF"
               else U.rate (batches * batch_size) (U.now () -. t0))
             intervals)
      strategies
  in
  U.table
    ~header:
      ("strategy (updates/s)"
      :: List.map (fun i -> Printf.sprintf "INTVAL=%d" i) intervals)
    rows;
  Printf.printf
    "\nexpected shape (Fig. 4): factorization (eager-fact) dominates at frequent\n\
     enumeration; lazy-list trails or times out at the highest frequency\n\
     (the paper's lazy-list did not finish within 50 hours at INTVAL=10).\n"

(* ----------------------------------------- *)
(* thm34: the OuMv reduction, executable.     *)
(* ----------------------------------------- *)

let oumv () =
  U.section "thm34: OuMv solved through triangle-detection IVM (Thm. 3.4)";
  let sizes = if !fast then [ 16; 32; 64 ] else [ 32; 64; 128 ] in
  let rng = Random.State.make [| 77 |] in
  let rows =
    List.map
      (fun n ->
        let inst = L.Oumv.random ~rng ~n ~density:0.4 in
        let naive, t_naive = U.time (fun () -> L.Oumv.solve_naive inst) in
        let via_delta, t_delta =
          U.time (fun () -> L.Reduction.run (module Tri.Delta) inst)
        in
        let via_eps, t_eps =
          U.time (fun () -> L.Reduction.run (module Eps.Triangle_count.Half) inst)
        in
        assert (naive = via_delta.L.Reduction.answers);
        assert (naive = via_eps.L.Reduction.answers);
        [
          string_of_int n;
          U.ms t_naive;
          U.ms t_delta;
          U.ms t_eps;
          string_of_int via_eps.L.Reduction.matrix_updates;
          string_of_int via_eps.L.Reduction.vector_updates;
          "ok";
        ])
      sizes
  in
  U.table
    ~header:
      [ "n"; "naive ms"; "via delta ms"; "via ivm-eps ms"; "matrix upd"; "vector upd"; "correct" ]
    rows;
  Printf.printf
    "\nthe reduction uses <n^2 matrix and <4n vector updates per round, as in the\n\
     proof; beating O(n^3) total time here would refute the OuMv conjecture.\n"

(* ------------------------------------------------ *)
(* tpch: the Sec. 4.4 classification study.          *)
(* ------------------------------------------------ *)

let tpch () =
  U.section "tpch: hierarchical TPC-H queries, with and without FDs (Sec. 4.4)";
  let cs = W.Tpch.study () in
  U.table
    ~header:[ "query"; "bool"; "bool+FD"; "non-bool"; "non-bool+FD"; "q-hier+FD" ]
    (List.map
       (fun (c : W.Tpch.classification) ->
         let b v = if v then "yes" else "-" in
         [
           Printf.sprintf "Q%d" c.W.Tpch.id;
           b c.W.Tpch.boolean_hier;
           b c.W.Tpch.boolean_hier_fd;
           b c.W.Tpch.nonboolean_hier;
           b c.W.Tpch.nonboolean_hier_fd;
           b c.W.Tpch.q_hier_fd;
         ])
       cs);
  let s = W.Tpch.summarize cs in
  Printf.printf "\n";
  U.table
    ~header:[ "count of hierarchical queries"; "paper"; "measured (our encodings)" ]
    [
      [ "Boolean"; "8"; string_of_int s.W.Tpch.boolean_total ];
      [ "non-Boolean"; "13"; string_of_int s.W.Tpch.nonboolean_total ];
      [ "Boolean under FDs"; "12 (+4)";
        Printf.sprintf "%d (+%d)" s.W.Tpch.boolean_fd_total
          (s.W.Tpch.boolean_fd_total - s.W.Tpch.boolean_total) ];
      [ "non-Boolean under FDs"; "17 (+4)";
        Printf.sprintf "%d (+%d)" s.W.Tpch.nonboolean_fd_total
          (s.W.Tpch.nonboolean_fd_total - s.W.Tpch.nonboolean_total) ];
    ]

let fd_fraction () =
  U.section "rai: fraction of a workload turned q-hierarchical by FDs (Sec. 4.4)";
  let n = if !fast then 1000 else 6000 in
  let f = W.Random_queries.measure ~rng:(Random.State.make [| 99 |]) ~n () in
  U.table
    ~header:[ "workload"; "queries"; "q-hier"; "q-hier under FDs" ]
    [
      [ "RelationalAI project (paper)"; "~6000"; "-"; "76%" ];
      [
        "synthetic snowflake corpus";
        string_of_int f.W.Random_queries.total;
        Printf.sprintf "%d%%" (100 * f.W.Random_queries.q_hier / n);
        Printf.sprintf "%d%%" (100 * f.W.Random_queries.q_hier_fd / n);
      ];
    ]

(* -------------------------------------------------------- *)
(* ex412: constant-time updates under FDs (Fig. 6).          *)
(* -------------------------------------------------------- *)

let fd_reduct () =
  U.section "ex412: the FD-reduct view tree gives O(1) updates (Ex. 4.12 / Fig. 6)";
  let q =
    Q.Cq.make ~name:"Q" ~free:[ "Z"; "Y"; "X"; "W" ]
      [ Q.Cq.atom "R" [ "X"; "W" ]; Q.Cq.atom "S" [ "X"; "Y" ]; Q.Cq.atom "T" [ "Y"; "Z" ] ]
  in
  let fds = [ Q.Fd.make [ "X" ] [ "Y" ]; Q.Fd.make [ "Y" ] [ "Z" ] ] in
  let sizes = if !fast then [ 10_000; 40_000 ] else [ 20_000; 80_000 ] in
  let rows =
    List.map
      (fun n ->
        let db = D.Database.Z.create () in
        let r = D.Database.Z.declare db "R" (D.Schema.of_list [ "X"; "W" ]) in
        let s = D.Database.Z.declare db "S" (D.Schema.of_list [ "X"; "Y" ]) in
        let t = D.Database.Z.declare db "T" (D.Schema.of_list [ "Y"; "Z" ]) in
        (* FD-satisfying data: Y = X + n, Z = Y + n. *)
        for x = 1 to n do
          Rel.add_entry s (tup [ x; x + n ]) 1;
          Rel.add_entry t (tup [ x + n; x + (2 * n) ]) 1;
          Rel.add_entry r (tup [ x; x mod 97 ]) 1
        done;
        let eng =
          match E.Fd_reduct.build fds q db with Ok e -> e | Error m -> failwith m
        in
        (* Balanced insert/delete probe pairs: the database size stays
           fixed, so the measurement isolates the per-update cost. *)
        let upd =
          U.per_call 20_000 (fun i ->
              let x = 1 + (i mod n) in
              E.Fd_reduct.apply_update eng
                (D.Update.make ~rel:"R" ~tuple:(tup [ x; 99 ]) ~payload:1);
              E.Fd_reduct.apply_update eng
                (D.Update.make ~rel:"R" ~tuple:(tup [ x; 99 ]) ~payload:(-1)))
          /. 2.
        in
        let out, t_enum = U.time (fun () ->
            Seq.fold_left (fun k _ -> k + 1) 0 (E.Fd_reduct.enumerate eng))
        in
        [ string_of_int n; U.us upd; string_of_int out;
          Printf.sprintf "%.2f" (1e9 *. t_enum /. float_of_int (max 1 out)) ])
      sizes
  in
  U.table
    ~header:[ "N"; "update us (~flat = O(1))"; "output"; "enum ns/tuple (~flat = O(1))" ]
    rows;
  Printf.printf
    "\nconstant-time maintenance via the q-hierarchical reduct (Thm. 4.11); the\n\
     residual growth is cache pressure from the larger hash tables, not work.\n"

(* ----------------------------------------------- *)
(* ex413: PK-FK amortized constant maintenance.     *)
(* ----------------------------------------------- *)

let pkfk () =
  U.section "ex413: valid PK-FK batches maintain amortized O(1) per update (Ex. 4.13)";
  let fanouts = if !fast then [ 1; 10; 100 ] else [ 1; 10; 100; 1000 ] in
  let rows =
    List.map
      (fun fanout ->
        let gen = W.Job.create () in
        let eng = E.Pkfk.create () in
        let apply = function
          | W.Job.T_title (m, d) -> E.Pkfk.update_title eng ~m d
          | W.Job.T_companies (m, c, d) -> E.Pkfk.update_companies eng ~m ~c d
          | W.Job.T_names (c, d) -> E.Pkfk.update_names eng ~c d
        in
        let total_updates = ref 0 in
        let groups = max 1 ((if !fast then 20_000 else 60_000) / ((2 * fanout) + 1)) in
        let (), elapsed =
          U.time (fun () ->
              for _ = 1 to groups do
                let b = W.Job.insert_batch gen ~fanout in
                total_updates := !total_updates + Array.length b;
                Array.iter apply b
              done;
              (* Delete half the groups, shuffled (inconsistent
                 intermediate states). *)
              for _ = 1 to groups / 2 do
                match W.Job.delete_batch gen with
                | Some b ->
                    total_updates := !total_updates + Array.length b;
                    Array.iter apply b
                | None -> ()
              done)
        in
        assert (E.Pkfk.count eng = E.Pkfk.recompute eng);
        [
          string_of_int fanout;
          string_of_int !total_updates;
          Printf.sprintf "%.2f" (float_of_int (E.Pkfk.work eng) /. float_of_int !total_updates);
          U.us (elapsed /. float_of_int !total_updates);
        ])
      fanouts
  in
  U.table
    ~header:[ "fanout"; "updates"; "work/update (flat = amortized O(1))"; "us/update" ]
    rows

(* ------------------------------------------------ *)
(* ex414: static vs dynamic relations.               *)
(* ------------------------------------------------ *)

let static_dynamic () =
  U.section "ex414: Q(A,B,C) = sum_D R^d(A,D).S^d(A,B).T^s(B,C) (Ex. 4.14)";
  let sizes = if !fast then [ 10_000; 40_000 ] else [ 20_000; 100_000 ] in
  let rows =
    List.map
      (fun n ->
        let db = D.Database.Z.create () in
        let _ = D.Database.Z.declare db "R" (D.Schema.of_list [ "A"; "D" ]) in
        let s = D.Database.Z.declare db "S" (D.Schema.of_list [ "A"; "B" ]) in
        let t = D.Database.Z.declare db "T" (D.Schema.of_list [ "B"; "C" ]) in
        (* One B-value pairs with many A's: a T update to that B is the
           linear-time case the static declaration avoids. *)
        for a = 1 to n do
          Rel.add_entry s (tup [ a; 1 ]) 1
        done;
        Rel.add_entry t (tup [ 1; 1 ]) 1;
        let eng = E.Static_dynamic_engine.create db in
        let upd_dyn =
          U.per_call 20_000 (fun i ->
              E.Static_dynamic_engine.apply_update eng
                (D.Update.make ~rel:"R"
                   ~tuple:(tup [ 1 + (i mod n); i mod 13 ])
                   ~payload:(if i mod 2 = 0 then 1 else -1)))
        in
        (* The all-dynamic engine pays O(n) for one update to T. *)
        let all = E.Static_dynamic_engine.All_dynamic.create db in
        let t_update =
          U.seconds (fun () ->
              E.Static_dynamic_engine.All_dynamic.apply_update all
                (D.Update.make ~rel:"T" ~tuple:(tup [ 1; 2 ]) ~payload:1))
        in
        [ string_of_int n; U.us upd_dyn; U.us t_update ])
      sizes
  in
  U.table
    ~header:
      [ "N"; "R/S update us (flat = O(1))"; "one T update us (grows = O(N))" ]
    rows

(* --------------------------------------------- *)
(* sec42: cascading q-hierarchical queries.       *)
(* --------------------------------------------- *)

let cascade () =
  U.section
    "sec42: maintaining {Q1,Q2} by cascading beats standalone Q1 (Sec. 4.2, Fig. 5)";
  let n_updates = if !fast then 10_000 else 30_000 in
  let enum_every = 2000 in
  let dom = 500 in
  let rng = Random.State.make [| 31 |] in
  let stream =
    List.init n_updates (fun _ ->
        let r = Random.State.int rng 10 in
        let rel = if r < 3 then "R" else if r < 6 then "S" else "T" in
        let x = 1 + Random.State.int rng dom and y = 1 + Random.State.int rng dom in
        D.Update.make ~rel ~tuple:(tup [ x; y ]) ~payload:1)
  in
  let drain seq = Seq.fold_left (fun n _ -> n + 1) 0 seq in
  (* Cascade: updates O(1); Q2 then Q1 enumerated at each request. *)
  let db = D.Database.Z.create () in
  let _ = D.Database.Z.declare db "R" (D.Schema.of_list [ "A"; "B" ]) in
  let _ = D.Database.Z.declare db "S" (D.Schema.of_list [ "B"; "C" ]) in
  let eng = E.Cascade.create db in
  let (), t_cascade =
    U.time (fun () ->
        List.iteri
          (fun i u ->
            E.Cascade.apply_update eng u;
            if (i + 1) mod enum_every = 0 then begin
              ignore (drain (E.Cascade.enumerate_q2 eng));
              ignore (drain (E.Cascade.enumerate_q1 eng))
            end)
          stream)
  in
  (* Standalone Q1: eager flat-output deltas; same enumeration points
     (Q2 is not even produced). *)
  let base = E.Cascade.Standalone.create () in
  let (), t_standalone =
    U.time (fun () ->
        List.iteri
          (fun i u ->
            E.Cascade.Standalone.apply_update base u;
            if (i + 1) mod enum_every = 0 then
              ignore (drain (E.Cascade.Standalone.enumerate base)))
          stream)
  in
  U.table
    ~header:[ "engine"; "updates/s (incl. enumeration)" ]
    [
      [ "cascade {Q1,Q2} (Fig. 5)"; U.rate n_updates t_cascade ];
      [ "standalone Q1 (delta, flat output)"; U.rate n_updates t_standalone ];
    ];
  Printf.printf
    "\nexpected shape: the cascade maintains BOTH queries yet sustains higher\n\
     throughput, because updates are O(1) and Q2's enumeration covers the\n\
     propagation into Q1's views (Sec. 4.2).\n"

(* --------------------------------------------- *)
(* sec46: insert-only vs insert-delete.           *)
(* --------------------------------------------- *)

let insert_only () =
  U.section
    "sec46: the acyclic path join under insert-only vs insert-delete (Sec. 4.6)";
  let sizes = if !fast then [ 4_000; 8_000 ] else [ 4_000; 8_000; 16_000 ] in
  let rows =
    List.map
      (fun n ->
        let rng = Random.State.make [| 17 |] in
        let dom = int_of_float (sqrt (float_of_int n)) in
        let ops =
          List.init n (fun _ ->
              ( Random.State.int rng 3,
                1 + Random.State.int rng dom,
                1 + Random.State.int rng dom ))
        in
        let mono = E.Insert_only.create () in
        let (), t_mono =
          U.time (fun () ->
              List.iter
                (fun (r, x, y) ->
                  match r with
                  | 0 -> E.Insert_only.insert_r mono ~a:x ~b:y 1
                  | 1 -> E.Insert_only.insert_s mono ~b:x ~c:y 1
                  | _ -> E.Insert_only.insert_t mono ~c:x ~d:y 1)
                ops)
        in
        let deltas = E.Insert_only.With_deletes.create () in
        let (), t_delta =
          U.time (fun () ->
              List.iter
                (fun (r, x, y) ->
                  E.Insert_only.With_deletes.update deltas
                    (match r with 0 -> `R | 1 -> `S | _ -> `T)
                    ~x ~y 1)
                ops)
        in
        [
          string_of_int n;
          Printf.sprintf "%.2f" (float_of_int (E.Insert_only.work mono) /. float_of_int n);
          U.us (t_mono /. float_of_int n);
          Printf.sprintf "%.2f"
            (float_of_int (E.Insert_only.With_deletes.work deltas) /. float_of_int n);
          U.us (t_delta /. float_of_int n);
        ])
      sizes
  in
  U.table
    ~header:
      [
        "inserts";
        "insert-only work/upd";
        "insert-only us/upd";
        "delta work/upd (grows)";
        "delta us/upd (grows)";
      ]
    rows;
  Printf.printf
    "\nexpected shape: the monotone-activation engine stays at O(1) amortized per\n\
     insert; the insert-delete (delta) engine pays the output-delta size, which\n\
     grows with N (Thm. 4.1: no fast general solution exists with deletes).\n"

(* ----------------------------------- *)
(* fig7: the IVM^eps trade-off space.   *)
(* ----------------------------------- *)

let fig7 () =
  U.section
    "fig7: preprocessing / update / delay trade-off for Q(A) = sum_B R(A,B).S(B)";
  let n = if !fast then 20_000 else 60_000 in
  let rng = Random.State.make [| 13 |] in
  let dom = 400 in
  let zipf = W.Zipf.create ~n:dom ~s:1.2 in
  let base =
    List.init n (fun _ -> (W.Zipf.sample zipf rng, 1 + Random.State.int rng dom))
  in
  let epsilons = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let rows =
    List.map
      (fun epsilon ->
        let eng = Eps.Binary_join.create ~epsilon () in
        let (), t_pre =
          U.time (fun () ->
              List.iter (fun (a, b) -> Eps.Binary_join.update_r eng ~a ~b 1) base;
              for b = 1 to dom / 2 do
                Eps.Binary_join.update_s eng ~b 1
              done)
        in
        let probes = if !fast then 5_000 else 20_000 in
        let t_upd =
          U.per_call probes (fun i ->
              if i mod 3 = 0 then
                Eps.Binary_join.update_r eng ~a:(W.Zipf.sample zipf rng)
                  ~b:(1 + (i mod dom))
                  (if i mod 2 = 0 then 1 else -1)
              else
                Eps.Binary_join.update_s eng ~b:(1 + (i mod dom))
                  (if i mod 2 = 0 then 1 else -1))
        in
        let outputs = ref 0 in
        let t_enum =
          U.seconds (fun () ->
              Seq.iter (fun _ -> incr outputs) (Eps.Binary_join.enumerate eng))
        in
        let label =
          if epsilon = 0.0 then "0.00 (lazy)"
          else if epsilon = 1.0 then "1.00 (eager)"
          else if epsilon = 0.5 then "0.50 (Pareto)"
          else Printf.sprintf "%.2f" epsilon
        in
        [
          label;
          U.ms t_pre;
          U.us t_upd;
          Printf.sprintf "%.2f" (1e6 *. t_enum /. float_of_int (max 1 !outputs));
        ])
      epsilons
  in
  U.table
    ~header:[ "epsilon"; "preprocess ms"; "update us (grows with eps)";
              "delay us/group (shrinks with eps)" ]
    rows;
  Printf.printf
    "\nexpected shape (Fig. 7): update time O(N^eps) increases and enumeration\n\
     delay O(N^(1-eps)) decreases along the eager-lazy segment; eps=1/2 is the\n\
     weakly Pareto optimal point touching the OMv lower-bound cuboid.\n"

(* --------------------------------------------------------- *)
(* par-scaling: parallel sharded batch maintenance (Sec. 2).  *)
(* --------------------------------------------------------- *)

(* Ring payloads make update batches commute, so a batch can be applied
   out of order across a domain pool: shard-partitioned writes for the
   base relations, chunk-parallel read-only probes for the polarized
   batch delta of the triangle count. Speedup needs real cores -- on a
   single-core host every width collapses to ~1x (the width-1 pool runs
   inline, so the sequential baseline is unpolluted by pool overhead). *)
let par_scaling () =
  U.section
    "par-scaling: batch maintenance across a domain pool (1/2/4/8 domains)\n\
     (speedup vs 1 domain; needs a multicore host to rise above ~1x)";
  let domain_widths = [ 1; 2; 4; 8 ] in
  let batch_sizes =
    if !fast then [ 100; 1_000; 10_000 ] else [ 100; 1_000; 10_000; 100_000 ]
  in
  let total = if !fast then 20_000 else 100_000 in
  let nodes = 400 in
  let rng = Random.State.make [| 42 |] in
  let stream =
    Array.init total (fun _ ->
        let rel =
          match Random.State.int rng 3 with 0 -> Tri.R | 1 -> Tri.S | _ -> Tri.T
        in
        let a = 1 + Random.State.int rng nodes
        and b = 1 + Random.State.int rng nodes in
        let m = if Random.State.int rng 10 < 8 then 1 else -1 in
        (rel, a, b, m))
  in
  let batches b =
    let rec go i acc =
      if i >= total then List.rev acc
      else
        let len = min b (total - i) in
        go (i + len) (Array.to_list (Array.sub stream i len) :: acc)
    in
    go 0 []
  in
  (* Prints the human table and returns the same cells as JSON, so the
     experiment can emit a machine-readable BENCH_par_scaling.json. *)
  let speedup_table ~title run =
    Printf.printf "\n-- %s --\n" title;
    let times = Hashtbl.create 32 in
    List.iter
      (fun d ->
        Ivm_par.Domain_pool.with_pool ~domains:d (fun pool ->
            List.iter
              (fun b -> Hashtbl.replace times (d, b) (run pool d b))
              batch_sizes))
      domain_widths;
    U.table
      ~header:
        ("domains"
        :: List.map (fun b -> Printf.sprintf "B=%d upd/s (speedup)" b) batch_sizes)
      (List.map
         (fun d ->
           string_of_int d
           :: List.map
                (fun b ->
                  let t = Hashtbl.find times (d, b) in
                  let t1 = Hashtbl.find times (1, b) in
                  Printf.sprintf "%s (%.2fx)" (U.rate total t) (t1 /. t))
                batch_sizes)
         domain_widths);
    U.Obj
      [
        ("title", U.Str title);
        ( "cells",
          U.List
            (List.concat_map
               (fun d ->
                 List.map
                   (fun b ->
                     let t = Hashtbl.find times (d, b) in
                     let t1 = Hashtbl.find times (1, b) in
                     U.Obj
                       [
                         ("domains", U.Int d);
                         ("batch", U.Int b);
                         ("seconds", U.Float t);
                         ("updates_per_s", U.Float (float_of_int total /. t));
                         ("speedup", U.Float (t1 /. t));
                       ])
                   batch_sizes)
               domain_widths) );
      ]
  in
  (* Triangle-count batch front: the 7-term polarized batch delta with
     chunk-parallel probes, then shard-free base application (one task
     per relation). Every (width, batch-size) cell must land on the same
     count -- the commutativity cross-check. *)
  let reference = ref None in
  let tri_json =
    speedup_table ~title:"triangle count, Delta batch front (7-term polarization)"
      (fun pool _ b ->
      let eng = E.Triangle_batch.Delta.create ~pool () in
      let bs = batches b in
      let (), t =
        U.time (fun () -> List.iter (E.Triangle_batch.Delta.apply_batch eng) bs)
      in
      let c = E.Triangle_batch.Delta.count eng in
      (match !reference with
      | None -> reference := Some c
      | Some c0 -> assert (c = c0));
      t)
  in
  (* Raw base-relation ingest: updates partitioned by (relation, shard),
     one writer per shard table. *)
  let module Pb = Ivm_par.Par_batch.Make (Ivm_ring.Int_ring) in
  let schema = D.Schema.of_list [ "A"; "B" ] in
  let name_of = function Tri.R -> "R" | Tri.S -> "S" | Tri.T -> "T" in
  let update_stream =
    Array.map
      (fun (rel, a, b, m) ->
        D.Update.make ~rel:(name_of rel) ~tuple:(tup [ a; b ]) ~payload:m)
      stream
  in
  let expected_sizes = ref None in
  let ingest_json =
    speedup_table ~title:"sharded base-relation ingest (64 shards per relation)"
      (fun pool _ b ->
      let srels =
        List.map (fun n -> (n, Pb.Srel.create ~shards:64 schema)) [ "R"; "S"; "T" ]
      in
      let find n = List.assoc n srels in
      let rec go i acc =
        if i >= total then List.rev acc
        else
          let len = min b (total - i) in
          go (i + len) (Array.to_list (Array.sub update_stream i len) :: acc)
      in
      let bs = go 0 [] in
      let (), t = U.time (fun () -> List.iter (Pb.apply pool ~find) bs) in
      let sizes = List.map (fun (_, s) -> Pb.Srel.size s) srels in
      (match !expected_sizes with
      | None -> expected_sizes := Some sizes
      | Some s0 -> assert (sizes = s0));
      t)
  in
  U.emit_json ~name:"par_scaling"
    (U.Obj
       [
         ("experiment", U.Str "par-scaling");
         ("total_updates", U.Int total);
         ("tables", U.List [ tri_json; ingest_json ]);
       ]);
  Printf.printf
    "\nsoundness: payloads live in a ring, so batches commute (Sec. 2) -- every\n\
     width must produce identical state (asserted above). The speedup column\n\
     shows parallel efficiency; per-batch partitioning is the sequential part\n\
     (Amdahl), so larger batches scale better.\n"

(* ----------------------------------------------------------- *)
(* stream: the durable multi-view maintenance runtime.          *)
(* ----------------------------------------------------------- *)

(* End-to-end throughput and latency of lib/stream: producer domains
   feed the bounded queue, the scheduler WAL-logs, coalesces and
   micro-batches epochs, and the registry maintains heterogeneous views
   (delta kernel, view tree, recomputation strategies). Run once with
   the WAL on and once off to isolate the durability cost. *)
let stream_bench () =
  U.section
    "stream: durable multi-view runtime (WAL + epoch micro-batching, lib/stream)";
  let module St = Ivm_stream in
  let module M = E.Maintainable in
  let module Tb = E.Triangle_batch in
  let module G = W.Graph_gen in
  let total = if !fast then 20_000 else 100_000 in
  let nodes = 300 in
  let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ] in
  let make_db () =
    let db = D.Database.Z.create () in
    List.iter
      (fun (n, vars) -> ignore (D.Database.Z.declare db n (D.Schema.of_list vars)))
      schemas;
    db
  in
  let q_rs =
    Q.Cq.make ~name:"paths_rs" ~free:[ "B"; "A"; "C" ]
      [ Q.Cq.atom "R" [ "A"; "B" ]; Q.Cq.atom "S" [ "B"; "C" ] ]
  in
  let q_st =
    Q.Cq.make ~name:"paths_st" ~free:[ "C"; "B"; "A" ]
      [ Q.Cq.atom "S" [ "B"; "C" ]; Q.Cq.atom "T" [ "C"; "A" ] ]
  in
  let register reg =
    St.Registry.register reg ~name:"tri-count" (fun _db ->
        M.of_triangle_batch ~name:"tri-count" (module Tb.Delta) (Tb.Delta.create ()));
    St.Registry.register reg ~name:"paths-rs" (fun db ->
        let forest = Option.get (Q.Variable_order.canonical q_rs) in
        M.of_view_tree ~name:"paths-rs" q_rs (E.View_tree.build q_rs forest db));
    St.Registry.register reg ~name:"paths-st" (fun db ->
        let forest = Option.get (Q.Variable_order.canonical q_st) in
        M.of_strategy ~name:"paths-st"
          (E.Strategy.create E.Strategy.Lazy_fact q_st forest db))
  in
  let run_config ~wal_enabled =
    let metrics = St.Metrics.create () in
    let reg = St.Registry.create ~metrics (make_db ()) in
    register reg;
    let wal_path = Filename.temp_file "ivm_bench" ".wal" in
    Sys.remove wal_path;
    let wal =
      if wal_enabled then Some (St.Errors.get_ok (St.Wal.Z.open_log wal_path)) else None
    in
    let queue = St.Queue.create ~capacity:8192 St.Queue.Block in
    let sched = St.Scheduler.create ?wal ~queue ~registry:reg ~metrics () in
    let producer =
      Domain.spawn (fun () ->
          let gen = G.create ~seed:7 { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
          for _ = 1 to total do
            let e = G.next gen in
            let rel = match e.G.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
            ignore
              (St.Queue.push queue
                 (St.Scheduler.item
                    (D.Update.make ~rel ~tuple:(tup [ e.G.src; e.G.dst ])
                       ~payload:e.G.mult)))
          done;
          St.Queue.close queue)
    in
    (* [Gc.minor_words ()] reads the allocation pointer directly;
       [quick_stat]'s minor counter only advances at collections. Major
       words and compactions do come from [quick_stat]. *)
    let w0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    let (), dt = U.time (fun () -> St.Errors.get_ok (St.Scheduler.run sched)) in
    let g1 = Gc.quick_stat () in
    let w1 = Gc.minor_words () in
    Domain.join producer;
    Option.iter St.Wal.Z.close wal;
    if Sys.file_exists wal_path then Sys.remove wal_path;
    let gc =
      (w1 -. w0, g1.Gc.major_words -. g0.Gc.major_words, g1.Gc.compactions - g0.Gc.compactions)
    in
    (metrics, reg, dt, gc)
  in
  let configs =
    List.map
      (fun (name, wal_enabled) -> (name, run_config ~wal_enabled))
      [ ("wal", true); ("no-wal", false) ]
  in
  let p hist q = St.Metrics.Hist.percentile hist q *. 1e3 in
  (* GC columns: allocation pressure of the whole maintenance loop —
     the storage rework's target metric alongside raw throughput. *)
  U.table
    ~header:
      [
        "config"; "upd/s"; "epochs"; "coalesced"; "p50 ms"; "p99 ms"; "minor w/upd";
        "major Mw"; "compact";
      ]
    (List.map
       (fun (name, ((m : St.Metrics.t), _, dt, (minor, major, compact))) ->
         [
           name;
           U.rate total dt;
           string_of_int m.St.Metrics.epochs;
           string_of_int m.St.Metrics.coalesced;
           Printf.sprintf "%.3f" (p m.St.Metrics.latency 0.5);
           Printf.sprintf "%.3f" (p m.St.Metrics.latency 0.99);
           Printf.sprintf "%.1f" (minor /. float_of_int total);
           Printf.sprintf "%.2f" (major /. 1e6);
           string_of_int compact;
         ])
       configs);
  (match List.assoc_opt "no-wal" configs with
  | Some (_, _, _, (minor, _, _)) ->
      stream_minor_words_per_update := Some (minor /. float_of_int total)
  | None -> ());
  let _, reg_wal, dt_wal, _ = List.assoc "wal" configs in
  let m_wal, _, _, _ = List.assoc "wal" configs in
  Printf.printf "\nper-view (wal config):\n";
  U.table
    ~header:[ "view"; "updates"; "batches"; "apply p50 ms"; "apply p99 ms" ]
    (List.map
       (fun (name, _) ->
         let v = St.Metrics.view m_wal name in
         [
           name;
           string_of_int v.St.Metrics.updates;
           string_of_int v.St.Metrics.batches;
           Printf.sprintf "%.3f" (p v.St.Metrics.apply 0.5);
           Printf.sprintf "%.3f" (p v.St.Metrics.apply 0.99);
         ])
       (St.Registry.views reg_wal));
  ignore dt_wal;
  U.emit_json ~name:"stream"
    (U.Obj
       [
         ("experiment", U.Str "stream");
         ("updates", U.Int total);
         ( "configs",
           U.List
             (List.map
                (fun (name, ((m : St.Metrics.t), reg, dt, (minor, major, compact))) ->
                  U.Obj
                    [
                      ("name", U.Str name);
                      ("seconds", U.Float dt);
                      ("updates_per_s", U.Float (float_of_int total /. dt));
                      ("epochs", U.Int m.St.Metrics.epochs);
                      ("coalesced", U.Int m.St.Metrics.coalesced);
                      ("latency_p50_ms", U.Float (p m.St.Metrics.latency 0.5));
                      ("latency_p99_ms", U.Float (p m.St.Metrics.latency 0.99));
                      ("gc_minor_words", U.Float minor);
                      ("gc_major_words", U.Float major);
                      ("gc_compactions", U.Int compact);
                      ( "gc_minor_words_per_update",
                        U.Float (minor /. float_of_int total) );
                      ( "views",
                        U.List
                          (List.map
                             (fun (vname, _) ->
                               let v = St.Metrics.view m vname in
                               U.Obj
                                 [
                                   ("name", U.Str vname);
                                   ("updates", U.Int v.St.Metrics.updates);
                                   ("batches", U.Int v.St.Metrics.batches);
                                   ( "apply_p50_ms",
                                     U.Float (p v.St.Metrics.apply 0.5) );
                                   ( "apply_p99_ms",
                                     U.Float (p v.St.Metrics.apply 0.99) );
                                 ])
                             (St.Registry.views reg)) );
                    ])
                configs) );
       ])

(* ----------------------------------------------------------- *)
(* recovery: crash-restart cost vs replayed WAL length.         *)
(* ----------------------------------------------------------- *)

(* The cost of coming back from a crash is [checkpoint load + view
   rebuild + WAL suffix replay]; the suffix length is the knob the
   checkpoint cadence controls. One full run writes the WAL and saves a
   checkpoint at each split fraction, then each restart is timed from
   its split's snapshot. Replay should dominate and scale linearly in
   the suffix — that line is what BENCH_recovery.json captures. *)
let recovery () =
  U.section "recovery: restart cost vs WAL suffix length (lib/stream)";
  let module St = Ivm_stream in
  let module M = E.Maintainable in
  let module Tb = E.Triangle_batch in
  let module G = W.Graph_gen in
  let ok = St.Errors.get_ok in
  let total = if !fast then 20_000 else 100_000 in
  let nodes = 300 in
  let splits = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ] in
  let make_db () =
    let db = D.Database.Z.create () in
    List.iter
      (fun (n, vars) -> ignore (D.Database.Z.declare db n (D.Schema.of_list vars)))
      schemas;
    db
  in
  let q_rs =
    Q.Cq.make ~name:"paths_rs" ~free:[ "B"; "A"; "C" ]
      [ Q.Cq.atom "R" [ "A"; "B" ]; Q.Cq.atom "S" [ "B"; "C" ] ]
  in
  let register reg =
    St.Registry.register reg ~name:"tri-count" (fun db ->
        let eng = Tb.Delta.create () in
        List.iter
          (fun name ->
            let r = match name with "R" -> E.Triangle.R | "S" -> E.Triangle.S | _ -> E.Triangle.T in
            Rel.iter
              (fun t p ->
                Tb.Delta.update eng r
                  ~a:(D.Value.to_int (D.Tuple.get t 0))
                  ~b:(D.Value.to_int (D.Tuple.get t 1))
                  p)
              (D.Database.Z.find db name))
          [ "R"; "S"; "T" ];
        M.of_triangle_batch ~name:"tri-count" (module Tb.Delta) eng);
    St.Registry.register reg ~name:"paths-rs" (fun db ->
        let forest = Option.get (Q.Variable_order.canonical q_rs) in
        M.of_view_tree ~name:"paths-rs" q_rs (E.View_tree.build q_rs forest db))
  in
  let wal_path = Filename.temp_file "ivm_bench" ".wal" in
  Sys.remove wal_path;
  let ckpt_path frac = Printf.sprintf "%s.%02.0f.ckpt" wal_path (frac *. 100.) in
  (* The "before the crash" run: stream everything through a live
     registry, logging each update and snapshotting at the splits. *)
  let db = make_db () in
  let reg = St.Registry.create db in
  register reg;
  let wal = ok (St.Wal.Z.open_log wal_path) in
  let gen = G.create ~seed:7 { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
  let marks = List.map (fun f -> int_of_float (f *. float_of_int total)) splits in
  let pending = ref [] in
  let flush () =
    St.Registry.apply_batch reg (List.rev !pending);
    pending := []
  in
  let save frac =
    flush ();
    ok (St.Checkpoint.Z.save (ckpt_path frac) ~db ~wal_offset:(St.Wal.Z.offset wal))
  in
  List.iter2 (fun f m -> if m = 0 then save f) splits marks;
  for i = 1 to total do
    let e = G.next gen in
    let rel = match e.G.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
    let u = D.Update.make ~rel ~tuple:(tup [ e.G.src; e.G.dst ]) ~payload:e.G.mult in
    ignore (ok (St.Wal.Z.append wal u));
    pending := u :: !pending;
    if List.length !pending >= 256 then flush ();
    List.iter2 (fun f m -> if m = i then save f) splits marks
  done;
  flush ();
  ok (St.Wal.Z.sync wal);
  St.Wal.Z.close wal;
  let reference = St.Registry.fingerprints reg in
  (* Restarts: one per split, each from its own snapshot. *)
  let rows =
    List.map
      (fun frac ->
        let suffix = total - int_of_float (frac *. float_of_int total) in
        let (restored, dt_load, dt_replay), dt_total =
          U.time (fun () ->
              let (rdb, offset), dt_load = U.time (fun () -> ok (St.Checkpoint.Z.load (ckpt_path frac))) in
              let restored = St.Registry.restore reg rdb in
              let pending = ref [] in
              let flush () =
                St.Registry.apply_batch restored (List.rev !pending);
                pending := []
              in
              let (), dt_replay =
                U.time (fun () ->
                    ignore
                      (ok
                         (St.Wal.Z.replay wal_path ~from:offset (fun u ->
                              pending := u :: !pending;
                              if List.length !pending >= 256 then flush ())));
                    flush ())
              in
              (restored, dt_load, dt_replay))
        in
        (* The whole point of recovering: the restart state is the
           uninterrupted state. *)
        assert (St.Registry.fingerprints restored = reference);
        (frac, suffix, dt_load, dt_replay, dt_total))
      splits
  in
  List.iter (fun f -> Sys.remove (ckpt_path f)) splits;
  Sys.remove wal_path;
  U.table
    ~header:[ "ckpt at"; "suffix"; "load ms"; "replay ms"; "total ms"; "replay upd/s" ]
    (List.map
       (fun (frac, suffix, dt_load, dt_replay, dt_total) ->
         [
           Printf.sprintf "%.0f%%" (frac *. 100.);
           string_of_int suffix;
           U.ms dt_load;
           U.ms dt_replay;
           U.ms dt_total;
           U.rate suffix dt_replay;
         ])
       rows);
  Printf.printf
    "\nrecovery = load snapshot + rebuild views + replay suffix; the suffix term\n\
     is linear in WAL length past the checkpoint, so checkpoint cadence bounds\n\
     restart time. Every restart's fingerprints matched the live run (asserted).\n";
  U.emit_json ~name:"recovery"
    (U.Obj
       [
         ("experiment", U.Str "recovery");
         ("updates", U.Int total);
         ( "points",
           U.List
             (List.map
                (fun (frac, suffix, dt_load, dt_replay, dt_total) ->
                  U.Obj
                    [
                      ("checkpoint_fraction", U.Float frac);
                      ("wal_suffix", U.Int suffix);
                      ("load_seconds", U.Float dt_load);
                      ("replay_seconds", U.Float dt_replay);
                      ("total_seconds", U.Float dt_total);
                    ])
                rows) );
       ])

(* --------------------------------------------------- *)
(* storage: flat table vs chained Hashtbl.              *)
(* --------------------------------------------------- *)

(* Allocation-profile microbench of the storage layer itself: the new
   open-addressing {!Ivm_data.Flat_tbl} against the chained stdlib
   [Hashtbl] it replaced ([Tuple.Tbl]), on insert / probe / delete /
   churn mixes at three sizes. Times are wall-clock ns per operation;
   "minor w/op" is minor-heap words allocated per operation (the number
   the rework drives down: stdlib pays a bucket cons per insert and an
   option per probe). *)
let storage () =
  U.section "storage: flat open-addressing table vs chained Hashtbl (lib/data)";
  let module Flat = D.Flat_tbl in
  let sizes = if !fast then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  (* [Gc.minor_words ()] reads the allocation pointer directly —
     [quick_stat]'s counter only advances at minor collections, which a
     short allocation-free loop never triggers. *)
  let measured n f =
    let w0 = Gc.minor_words () in
    let t0 = U.now () in
    f ();
    let dt = U.now () -. t0 in
    let w1 = Gc.minor_words () in
    let per = float_of_int n in
    (dt *. 1e9 /. per, (w1 -. w0) /. per)
  in
  let rows = ref [] in
  let record ~size ~mix ~impl (ns, words) ~probe_dist =
    rows := (size, mix, impl, ns, words, probe_dist) :: !rows
  in
  List.iter
    (fun n ->
      (* Keys (and a disjoint miss set) are preallocated so the
         measurement sees only table work, never tuple construction. *)
      let keys = Array.init n (fun i -> tup [ i; (i * 7) + 1 ]) in
      let misses = Array.init n (fun i -> tup [ -i - 1; i ]) in
      Array.iter (fun k -> ignore (D.Tuple.hash k)) keys;
      Array.iter (fun k -> ignore (D.Tuple.hash k)) misses;
      (* flat table *)
      let ft = Flat.create ~size:16 (-1) in
      let insert_flat =
        measured n (fun () ->
            for i = 0 to n - 1 do
              Flat.set ft keys.(i) i
            done)
      in
      record ~size:n ~mix:"insert" ~impl:"flat" insert_flat
        ~probe_dist:(Some (Flat.mean_probe_distance ft));
      let sink = ref 0 in
      record ~size:n ~mix:"probe" ~impl:"flat"
        (measured (2 * n) (fun () ->
             for i = 0 to n - 1 do
               sink := !sink + Flat.find_default ft keys.(i) 0;
               sink := !sink + Flat.find_default ft misses.(i) 0
             done))
        ~probe_dist:None;
      record ~size:n ~mix:"churn" ~impl:"flat"
        (measured (2 * n) (fun () ->
             for i = 0 to n - 1 do
               Flat.remove ft keys.(i);
               Flat.set ft keys.(i) i
             done))
        ~probe_dist:None;
      record ~size:n ~mix:"delete" ~impl:"flat"
        (measured n (fun () ->
             for i = 0 to n - 1 do
               Flat.remove ft keys.(i)
             done))
        ~probe_dist:None;
      (* chained stdlib Hashtbl over the same keys *)
      let ht = D.Tuple.Tbl.create 16 in
      record ~size:n ~mix:"insert" ~impl:"hashtbl"
        (measured n (fun () ->
             for i = 0 to n - 1 do
               D.Tuple.Tbl.replace ht keys.(i) i
             done))
        ~probe_dist:None;
      record ~size:n ~mix:"probe" ~impl:"hashtbl"
        (measured (2 * n) (fun () ->
             for i = 0 to n - 1 do
               (match D.Tuple.Tbl.find_opt ht keys.(i) with
               | Some v -> sink := !sink + v
               | None -> ());
               match D.Tuple.Tbl.find_opt ht misses.(i) with
               | Some v -> sink := !sink + v
               | None -> ()
             done))
        ~probe_dist:None;
      record ~size:n ~mix:"churn" ~impl:"hashtbl"
        (measured (2 * n) (fun () ->
             for i = 0 to n - 1 do
               D.Tuple.Tbl.remove ht keys.(i);
               D.Tuple.Tbl.replace ht keys.(i) i
             done))
        ~probe_dist:None;
      record ~size:n ~mix:"delete" ~impl:"hashtbl"
        (measured n (fun () ->
             for i = 0 to n - 1 do
               D.Tuple.Tbl.remove ht keys.(i)
             done))
        ~probe_dist:None;
      ignore !sink)
    sizes;
  let rows = List.rev !rows in
  U.table
    ~header:[ "size"; "mix"; "impl"; "ns/op"; "minor w/op"; "probe dist" ]
    (List.map
       (fun (size, mix, impl, ns, words, pd) ->
         [
           string_of_int size;
           mix;
           impl;
           Printf.sprintf "%.0f" ns;
           Printf.sprintf "%.2f" words;
           (match pd with Some d -> Printf.sprintf "%.2f" d | None -> "-");
         ])
       rows);
  U.emit_json ~name:"storage"
    (U.Obj
       [
         ("experiment", U.Str "storage");
         ( "rows",
           U.List
             (List.map
                (fun (size, mix, impl, ns, words, pd) ->
                  U.Obj
                    ([
                       ("size", U.Int size);
                       ("mix", U.Str mix);
                       ("impl", U.Str impl);
                       ("ns_per_op", U.Float ns);
                       ("minor_words_per_op", U.Float words);
                     ]
                    @ match pd with
                      | Some d -> [ ("mean_probe_distance", U.Float d) ]
                      | None -> []))
                rows) );
       ])

(* --------------------------------------------------- *)
(* micro: Bechamel per-operation latencies.             *)
(* --------------------------------------------------- *)

let micro () =
  U.section "micro: per-operation latencies (Bechamel, one Test.make per table)";
  let open Bechamel in
  (* fig3/fig4 tables: one single-tuple update through a q-hierarchical
     view tree. *)
  let fig3_update =
    let q =
      Q.Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
        [ Q.Cq.atom "R" [ "Y"; "X" ]; Q.Cq.atom "S" [ "Y"; "Z" ] ]
    in
    let db = D.Database.Z.create () in
    let _ = D.Database.Z.declare db "R" (D.Schema.of_list [ "Y"; "X" ]) in
    let _ = D.Database.Z.declare db "S" (D.Schema.of_list [ "Y"; "Z" ]) in
    let tree = E.View_tree.build q (Option.get (Q.Variable_order.canonical q)) db in
    let i = ref 0 in
    Test.make ~name:"fig3: view-tree single-tuple update"
      (Staged.stage (fun () ->
           incr i;
           E.View_tree.apply_update tree
             (D.Update.make ~rel:"R" ~tuple:(tup [ !i mod 500; !i mod 97 ]) ~payload:1)))
  in
  (* sec3 table: one delta-query update to the triangle count. *)
  let tri_update =
    let e = Tri.Delta.create () in
    for c = 1 to 500 do
      Tri.Delta.update e Tri.S ~a:1 ~b:c 1;
      Tri.Delta.update e Tri.T ~a:c ~b:1 1
    done;
    let s = ref 1 in
    Test.make ~name:"sec31: triangle delta update"
      (Staged.stage (fun () ->
           s := - !s;
           Tri.Delta.update e Tri.R ~a:1 ~b:1 !s))
  in
  (* sec33/fig7 table: one IVM^eps update. *)
  let eps_update =
    let e = Eps.Triangle_count.create ~epsilon:0.5 () in
    for c = 1 to 500 do
      Eps.Triangle_count.update e Tri.S ~a:1 ~b:c 1;
      Eps.Triangle_count.update e Tri.T ~a:c ~b:1 1
    done;
    let s = ref 1 in
    Test.make ~name:"sec33: IVM^eps triangle update"
      (Staged.stage (fun () ->
           s := - !s;
           Eps.Triangle_count.update e Tri.R ~a:1 ~b:1 !s))
  in
  (* ex413 table: one PK-FK chain update. *)
  let pkfk_update =
    let e = E.Pkfk.create () in
    let i = ref 0 in
    Test.make ~name:"ex413: pk-fk chain update"
      (Staged.stage (fun () ->
           incr i;
           E.Pkfk.update_companies e ~m:(!i mod 1000) ~c:(!i mod 100) 1))
  in
  (* sec2 table: raw relation updates. *)
  let rel_update =
    let r = Rel.create (D.Schema.of_list [ "A"; "B" ]) in
    let i = ref 0 in
    Test.make ~name:"sec2: relation add_entry"
      (Staged.stage (fun () ->
           incr i;
           Rel.add_entry r (tup [ !i mod 1000; !i mod 37 ]) 1))
  in
  let tests =
    Test.make_grouped ~name:"ivm"
      [ rel_update; fig3_update; tri_update; eps_update; pkfk_update ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] -> rows := [ name; Printf.sprintf "%.0f" t ] :: !rows
      | Some _ | None -> rows := [ name; "n/a" ] :: !rows)
    results;
  U.table ~header:[ "operation"; "ns/op" ] (List.sort compare !rows)

(* ----------------------------------------------------------------- *)
(* dataflow: operator-graph maintenance — graph vs view tree on the   *)
(* same join stream, incremental extremum vs per-epoch recompute, and *)
(* the memory won by sharing a join subgraph between views.           *)
(* ----------------------------------------------------------------- *)

module Df = Ivm_dataflow.Graph

(* A mixed-polarity stream: every 4th update retracts its predecessor,
   so base multiplicities never go negative. *)
let polarized_stream n gen =
  let prev = ref None in
  List.init n (fun i ->
      match !prev with
      | Some (u : int D.Update.t) when i land 3 = 3 ->
          prev := None;
          D.Update.make ~rel:u.D.Update.rel ~tuple:u.D.Update.tuple
            ~payload:(-u.D.Update.payload)
      | _ ->
          let u = gen () in
          prev := Some u;
          u)

let rec chunks k = function
  | [] -> []
  | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
            let xs, rest = take (k - 1) tl in
            (x :: xs, rest)
        | rest -> ([], rest)
      in
      let c, rest = take k l in
      c :: chunks k rest

let dataflow () =
  U.section "dataflow: operator graphs (DBSP-style DAG) vs dedicated engines";
  let n = if !fast then 20_000 else 200_000 in
  let rng = Random.State.make [| 2024 |] in
  (* -- join throughput: Q(a,c) = R(a,b) |><| S(b,c), the same stream
     through the factorized view tree and the operator graph -- *)
  let q =
    Q.Cq.make ~name:"Q" ~free:[ "a"; "c" ]
      [ Q.Cq.atom "R" [ "a"; "b" ]; Q.Cq.atom "S" [ "b"; "c" ] ]
  in
  let stream =
    polarized_stream n (fun () ->
        D.Update.make
          ~rel:(if Random.State.bool rng then "R" else "S")
          ~tuple:(tup [ Random.State.int rng 200; Random.State.int rng 200 ])
          ~payload:1)
  in
  let vt_db = D.Database.Z.create () in
  let _ = D.Database.Z.declare vt_db "R" (D.Schema.of_list [ "a"; "b" ]) in
  let _ = D.Database.Z.declare vt_db "S" (D.Schema.of_list [ "b"; "c" ]) in
  let vt = E.View_tree.build q (Option.get (Q.Variable_order.canonical q)) vt_db in
  let vt_s = U.seconds (fun () -> List.iter (E.View_tree.apply_update vt) stream) in
  let g = Df.create () in
  let r = Df.source g ~rel:"R" ~schema:[ "a"; "b" ] in
  let s = Df.source g ~rel:"S" ~schema:[ "b"; "c" ] in
  Df.output g ~name:"q" (Df.project g ~cols:[ "a"; "c" ] (Df.join g r s));
  let epochs = chunks 64 stream in
  let df_s = U.seconds (fun () -> List.iter (Df.apply g) epochs) in
  U.table
    ~header:[ "engine"; "updates"; "s"; "updates/s" ]
    [
      [ "view tree (single-tuple)"; string_of_int n; Printf.sprintf "%.3f" vt_s; U.rate n vt_s ];
      [ "operator graph (64/epoch)"; string_of_int n; Printf.sprintf "%.3f" df_s; U.rate n df_s ];
    ];
  (* -- extremum: grouped MIN under extremum-targeting deletes,
     incremental (ordered index + re-scan fallback) vs a from-scratch
     recompute of every group per 64-update epoch -- *)
  let ne = if !fast then 10_000 else 50_000 in
  let groups = 64 in
  (* Deletes aim at the currently live minimum of a random group (a
     predecessor-retracting stream would coalesce to nothing inside an
     epoch and never touch a served value). *)
  let ext_stream =
    let live = Array.make groups [] in
    List.init ne (fun _ ->
        let gk = Random.State.int rng groups in
        match live.(gk) with
        | v :: rest when Random.State.int rng 100 < 30 ->
            let mn = List.fold_left min v rest in
            live.(gk) <- (let rec drop = function
                            | [] -> []
                            | x :: tl -> if x = mn then tl else x :: drop tl
                          in
                          drop live.(gk));
            D.Update.make ~rel:"R" ~tuple:(tup [ gk; mn ]) ~payload:(-1)
        | _ ->
            let v = Random.State.int rng 30 * (1 + Random.State.int rng 30) in
            live.(gk) <- v :: live.(gk);
            D.Update.make ~rel:"R" ~tuple:(tup [ gk; v ]) ~payload:1)
  in
  let ext_epochs = chunks 64 ext_stream in
  let eg = Df.create () in
  Df.output eg ~name:"mn"
    (Df.minimum eg ~col:"v" ~group:[ "g" ] (Df.source eg ~rel:"R" ~schema:[ "g"; "v" ]));
  let inc_s = U.seconds (fun () -> List.iter (Df.apply eg) ext_epochs) in
  let re_db = D.Database.Z.create () in
  let _ = D.Database.Z.declare re_db "R" (D.Schema.of_list [ "g"; "v" ]) in
  let sink = ref 0 in
  let recompute () =
    let mins = Hashtbl.create groups in
    Rel.iter
      (fun tp _ ->
        let gk = D.Value.to_int (D.Tuple.get tp 0) and v = D.Value.to_int (D.Tuple.get tp 1) in
        match Hashtbl.find_opt mins gk with
        | Some m when m <= v -> ()
        | _ -> Hashtbl.replace mins gk v)
      (D.Database.Z.find re_db "R");
    sink := !sink + Hashtbl.length mins
  in
  let re_s =
    U.seconds (fun () ->
        List.iter
          (fun epoch ->
            List.iter (D.Database.Z.apply re_db) epoch;
            recompute ())
          ext_epochs)
  in
  U.table
    ~header:[ "MIN maintenance"; "updates"; "s"; "updates/s"; "re-scans" ]
    [
      [ "incremental (operator graph)"; string_of_int ne; Printf.sprintf "%.3f" inc_s;
        U.rate ne inc_s; string_of_int (Df.rescans eg) ];
      [ "per-epoch recompute"; string_of_int ne; Printf.sprintf "%.3f" re_s;
        U.rate ne re_s; "-" ];
    ];
  (* -- sharing: K projection views over one join, on a single graph
     with a hash-consed shared subgraph vs K duplicated graphs. The
     join's two input integrals are the dominant state; sharing pays
     them once. -- *)
  let nrows = if !fast then 20_000 else 100_000 in
  let load = polarized_stream nrows (fun () ->
      D.Update.make
        ~rel:(if Random.State.bool rng then "R" else "S")
        ~tuple:(tup [ Random.State.int rng 500; Random.State.int rng 500 ])
        ~payload:1)
  in
  let view_cols = [ [ "a" ]; [ "b" ]; [ "c" ]; [ "a"; "c" ] ] in
  let live_words () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let build_shared () =
    let g = Df.create () in
    let j =
      Df.join g
        (Df.source g ~rel:"R" ~schema:[ "a"; "b" ])
        (Df.source g ~rel:"S" ~schema:[ "b"; "c" ])
    in
    List.iteri
      (fun i cols -> Df.output g ~name:(Printf.sprintf "v%d" i) (Df.project g ~cols j))
      view_cols;
    Df.apply g load;
    g
  in
  let build_duplicated () =
    List.map
      (fun cols ->
        let g = Df.create () in
        let j =
          Df.join g
            (Df.source g ~rel:"R" ~schema:[ "a"; "b" ])
            (Df.source g ~rel:"S" ~schema:[ "b"; "c" ])
        in
        Df.output g ~name:"v" (Df.project g ~cols j);
        Df.apply g load;
        g)
      view_cols
  in
  let base = live_words () in
  let shared = build_shared () in
  let shared_words = live_words () - base in
  let base = live_words () in
  let dup = build_duplicated () in
  let dup_words = live_words () - base in
  let shared_nodes = Df.node_count shared in
  let dup_nodes = List.fold_left (fun acc g -> acc + Df.node_count g) 0 dup in
  U.table
    ~header:[ "layout"; "views"; "nodes"; "live words" ]
    [
      [ "shared subgraph"; string_of_int (List.length view_cols);
        string_of_int shared_nodes; string_of_int shared_words ];
      [ "duplicated graphs"; string_of_int (List.length view_cols);
        string_of_int dup_nodes; string_of_int dup_words ];
    ];
  ignore (Sys.opaque_identity (shared, dup, !sink));
  U.emit_json ~name:"dataflow"
    (U.Obj
       [
         ("experiment", U.Str "dataflow");
         ( "join",
           U.Obj
             [
               ("updates", U.Int n);
               ("view_tree_updates_s", U.Float (float_of_int n /. max 1e-9 vt_s));
               ("graph_updates_s", U.Float (float_of_int n /. max 1e-9 df_s));
             ] );
         ( "extremum",
           U.Obj
             [
               ("updates", U.Int ne);
               ("incremental_updates_s", U.Float (float_of_int ne /. max 1e-9 inc_s));
               ("recompute_updates_s", U.Float (float_of_int ne /. max 1e-9 re_s));
               ("rescans", U.Int (Df.rescans eg));
             ] );
         ( "sharing",
           U.Obj
             [
               ("views", U.Int (List.length view_cols));
               ("rows", U.Int nrows);
               ("shared_live_words", U.Int shared_words);
               ("duplicated_live_words", U.Int dup_words);
               ("shared_nodes", U.Int shared_nodes);
               ("duplicated_nodes", U.Int dup_nodes);
             ] );
       ])

(* ------------------------------------------------- *)

let experiments =
  [
    ("fig2", fig2);
    ("triangle-scaling", triangle_scaling);
    ("fig4", fig4);
    ("oumv", oumv);
    ("tpch", tpch);
    ("fd-fraction", fd_fraction);
    ("fd-reduct", fd_reduct);
    ("pkfk", pkfk);
    ("static-dynamic", static_dynamic);
    ("cascade", cascade);
    ("insert-only", insert_only);
    ("fig7", fig7);
    ("par-scaling", par_scaling);
    ("stream", stream_bench);
    ("recovery", recovery);
    ("storage", storage);
    ("dataflow", dataflow);
    ("micro", micro);
  ]

(* The CI allocation gate: compare the stream experiment's no-wal minor
   words per update against a checked-in baseline, failing on a >25%
   regression. The baseline file holds one float (regenerate it with
   the value this prints when the improvement is intentional). *)
let check_alloc baseline_file =
  match !stream_minor_words_per_update with
  | None ->
      Printf.eprintf "--check-alloc: stream experiment did not run\n";
      exit 2
  | Some measured -> (
      match
        let ic = open_in baseline_file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> float_of_string (String.trim (input_line ic)))
      with
      | exception Sys_error msg ->
          Printf.eprintf "--check-alloc: cannot read %s: %s\n" baseline_file msg;
          exit 2
      | exception _ ->
          Printf.eprintf "--check-alloc: %s does not hold a float\n" baseline_file;
          exit 2
      | baseline ->
          let limit = baseline *. 1.25 in
          Printf.printf
            "\nalloc gate: %.1f minor words/update (baseline %.1f, limit %.1f)\n"
            measured baseline limit;
          if measured > limit then begin
            Printf.eprintf
              "--check-alloc: minor allocation per update regressed more than 25%%\n";
            exit 1
          end)

let () =
  let only = ref None in
  let alloc_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--only" :: x :: rest ->
        only := Some x;
        parse rest
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--check-alloc" :: file :: rest ->
        alloc_baseline := Some file;
        parse rest
    | "--list" :: _ ->
        List.iter (fun (n, _) -> print_endline n) experiments;
        exit 0
    | x :: _ ->
        Printf.eprintf
          "unknown argument %s (try --list, --only <id>, --fast, --check-alloc <file>)\n"
          x;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t0 = U.now () in
  List.iter
    (fun (name, f) ->
      match !only with Some o when o <> name -> () | Some _ | None -> f ())
    experiments;
  Option.iter check_alloc !alloc_baseline;
  Printf.printf "\ntotal wall time: %.1fs\n" (U.now () -. t0)
