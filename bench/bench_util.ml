(** Shared machinery for the experiment harness: wall-clock timing,
    table rendering, and log-log slope fitting for the complexity-shape
    experiments. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(** Time [f] and return seconds only. *)
let seconds f = snd (time f)

(** Average seconds per call over [n] calls of [f]. *)
let per_call n f =
  let t0 = now () in
  for i = 1 to n do
    f i
  done;
  (now () -. t0) /. float_of_int n

(** Fitted slope of log(time) against log(n): the measured complexity
    exponent. *)
let fitted_exponent (points : (float * float) list) : float =
  let logs = List.map (fun (x, y) -> (log x, log (max y 1e-12))) points in
  let n = float_of_int (List.length logs) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n";
  flush stdout

(** Render a table with left-aligned first column. *)
let table ~header rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells)
  in
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (line row)) rows;
  flush stdout

let us t = Printf.sprintf "%.2f" (t *. 1e6)
let ms t = Printf.sprintf "%.1f" (t *. 1e3)
let rate n t = Printf.sprintf "%.0f" (float_of_int n /. max 1e-9 t)

(** Minimal JSON for the machine-readable [BENCH_*.json] artifacts the
    CI and plotting scripts consume — no dependency beyond stdlib. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let rec write_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write_json buf x)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write_json buf (Str k);
          Buffer.add_char buf ':';
          write_json buf v)
        kvs;
      Buffer.add_char buf '}'

(** Write [BENCH_<name>.json] into the current directory and say so. *)
let emit_json ~name json =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let buf = Buffer.create 1024 in
  write_json buf json;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path
